"""The fault-injection campaign subsystem: triggers, oracle, cells."""

import pytest

from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import CrashInjector
from repro.errors import (
    ConfigError,
    FaultInjectionError,
    PowerFailure,
    RecoveryError,
)
from repro.faults import (
    PHASE_AMNT_MOVEMENT,
    PHASE_AMNTPP_RESTRUCTURE,
    PHASE_MDCACHE_EVICTION,
    PHASE_STRICT_WRITE_THROUGH,
    VERDICT_BASELINE,
    VERDICT_DETECTED,
    VERDICT_RECOVERED,
    VERDICT_SILENT,
    CrashScheduler,
    CrashTrigger,
    FaultCampaignSpec,
    default_fault_config,
    run_campaign,
    run_fault_cell,
    run_oracle,
)
from repro.faults.campaign import spread_ordinals
from repro.sim.engine import drive_memory_boundary, replay_payload
from repro.sim.machine import build_machine
from repro.util.units import MB
from repro.workloads.registry import profile_spec

SEED = 2024
#: Small machine: cheap full-tree rebuilds, still 512 level-3 regions.
CONFIG = default_fault_config(capacity_bytes=16 * MB)
TINY = profile_spec("faults", "hotshift", 600, SEED)


def tiny_cell(protocol, trigger=None, tamper=""):
    return FaultCampaignSpec(
        protocol=protocol, trace=TINY, trigger=trigger,
        seed=SEED, tamper=tamper,
    )


class TestFaultInjectionError:
    def test_timing_engine_rejected_with_typed_error(self):
        config = default_config(capacity_bytes=16 * MB)
        mee = MemoryEncryptionEngine(
            config, make_protocol("leaf", config), functional=False
        )
        with pytest.raises(FaultInjectionError) as excinfo:
            CrashInjector(mee)
        message = str(excinfo.value)
        assert "functional-mode engine" in message
        assert "functional=True" in message

    def test_subclasses_recovery_error(self):
        # Callers catching the old generic error must keep working.
        assert issubclass(FaultInjectionError, RecoveryError)

    def test_functional_engine_accepted(self):
        config = default_config(capacity_bytes=16 * MB)
        mee = MemoryEncryptionEngine(
            config, make_protocol("leaf", config), functional=True
        )
        assert CrashInjector(mee).crash_and_recover().ok


class TestCrashTrigger:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CrashTrigger("nope", 1)
        with pytest.raises(ConfigError):
            CrashTrigger("phase", 1)  # missing phase name
        with pytest.raises(ConfigError):
            CrashTrigger("phase", 0, PHASE_MDCACHE_EVICTION)
        with pytest.raises(ConfigError):
            CrashTrigger("access", -1)

    def test_describe(self):
        assert CrashTrigger("access", 250).describe() == "access@250"
        assert (
            CrashTrigger("phase", 2, PHASE_AMNT_MOVEMENT).describe()
            == "amnt_movement@2"
        )


class TestCrashScheduler:
    def test_access_trigger_fires_at_exact_index(self):
        scheduler = CrashScheduler(CrashTrigger("access", 2))
        scheduler.on_access(0)
        scheduler.on_access(1)
        with pytest.raises(PowerFailure) as excinfo:
            scheduler.on_access(2)
        assert excinfo.value.access_index == 2
        assert not excinfo.value.write_committed

    def test_phase_trigger_outside_group_raises_immediately(self):
        scheduler = CrashScheduler(
            CrashTrigger("phase", 2, PHASE_MDCACHE_EVICTION)
        )
        scheduler.on_access(0)
        scheduler.on_phase(PHASE_MDCACHE_EVICTION)  # occurrence 1
        with pytest.raises(PowerFailure) as excinfo:
            scheduler.on_phase(PHASE_MDCACHE_EVICTION)
        assert excinfo.value.occurrence == 2
        assert not excinfo.value.write_committed

    def test_phase_trigger_inside_group_defers_to_commit(self):
        scheduler = CrashScheduler(
            CrashTrigger("phase", 1, PHASE_STRICT_WRITE_THROUGH)
        )
        scheduler.on_access(0)
        scheduler.begin_group()
        scheduler.on_phase(PHASE_STRICT_WRITE_THROUGH)  # deferred
        with pytest.raises(PowerFailure) as excinfo:
            scheduler.commit_group()
        assert excinfo.value.write_committed
        assert excinfo.value.phase == PHASE_STRICT_WRITE_THROUGH

    def test_unarmed_scheduler_only_counts(self):
        scheduler = CrashScheduler(None)
        scheduler.on_access(0)
        scheduler.begin_group()
        scheduler.on_phase(PHASE_MDCACHE_EVICTION)
        scheduler.commit_group()
        scheduler.on_phase(PHASE_MDCACHE_EVICTION)
        assert scheduler.phase_counts == {PHASE_MDCACHE_EVICTION: 2}
        assert scheduler.fired is None


class TestSpreadOrdinals:
    def test_small_counts_cover_every_boundary(self):
        assert spread_ordinals(3, 5) == [1, 2, 3]

    def test_large_counts_include_first_and_last(self):
        ordinals = spread_ordinals(100, 3)
        assert ordinals[0] == 1 and ordinals[-1] == 100
        assert len(ordinals) == 3

    def test_degenerate(self):
        assert spread_ordinals(0, 3) == []
        assert spread_ordinals(5, 0) == []
        assert spread_ordinals(9, 1) == [5]


class TestReplayDriver:
    def test_unarmed_replay_completes_and_tracks_golden(self):
        machine = build_machine(CONFIG, "leaf", functional=True, seed=SEED)
        from repro.workloads.registry import materialize_trace

        trace = materialize_trace(TINY)
        record = drive_memory_boundary(machine, trace, seed=SEED)
        assert not record.crashed
        assert record.accesses_completed == len(trace)
        assert record.golden  # writes were tracked
        # The shadow matches the machine: spot-check via readback.
        base, payload = next(iter(sorted(record.golden.items())))
        assert machine.mee.read_block_data(base) == payload

    def test_replay_payload_is_position_deterministic(self):
        assert replay_payload(7) == replay_payload(7)
        assert replay_payload(7) != replay_payload(8)
        assert len(replay_payload(3, 64)) == 64


class TestFaultCell:
    def test_access_crash_recovers(self):
        outcome = run_fault_cell(
            tiny_cell("amnt", CrashTrigger("access", 300)), CONFIG
        )
        assert outcome.verdict == VERDICT_RECOVERED
        assert outcome.crash_phase == "access"
        assert outcome.crash_access_index == 300
        assert outcome.accesses_completed == 300
        assert outcome.blocks_checked > 0
        assert outcome.blocks_recovered == outcome.blocks_checked
        assert outcome.anomaly == ""

    def test_probe_cell_reports_baseline(self):
        outcome = run_fault_cell(tiny_cell("amnt"), CONFIG)
        assert outcome.verdict == VERDICT_BASELINE
        assert outcome.trigger == "probe"
        assert dict(outcome.phase_counts).get(PHASE_MDCACHE_EVICTION, 0) > 0

    def test_unreachable_trigger_is_flagged(self):
        outcome = run_fault_cell(
            tiny_cell("leaf", CrashTrigger("access", 10_000)), CONFIG
        )
        assert outcome.verdict == VERDICT_BASELINE
        assert outcome.anomaly == "trigger-not-fired"

    def test_data_tamper_is_detected(self):
        outcome = run_fault_cell(
            tiny_cell("leaf", CrashTrigger("access", 400), tamper="data"),
            CONFIG,
        )
        assert outcome.verdict == VERDICT_DETECTED
        assert outcome.tamper_detail.startswith("data[")
        assert outcome.anomaly == ""

    def test_counter_tamper_is_detected(self):
        outcome = run_fault_cell(
            tiny_cell("leaf", CrashTrigger("access", 400), tamper="counter"),
            CONFIG,
        )
        assert outcome.verdict == VERDICT_DETECTED
        assert outcome.tamper_detail.startswith("counter[")
        assert outcome.anomaly == ""

    def test_volatile_crash_detected_without_anomaly(self):
        # The volatile baseline loses dirty metadata by design: its
        # failure must be *detected*, and is not an anomaly because the
        # protocol never claimed crash consistency.
        outcome = run_fault_cell(
            tiny_cell("volatile", CrashTrigger("access", 300)), CONFIG
        )
        assert outcome.verdict == VERDICT_DETECTED
        assert not outcome.crash_consistent
        assert outcome.anomaly == ""


class TestOracleClassification:
    def test_forged_golden_yields_silent_divergence(self):
        """The silent-divergence verdict path: recovery succeeds but a
        readback disagrees with the shadow (forged here — the protocols
        themselves never produce it)."""
        machine = build_machine(CONFIG, "leaf", functional=True, seed=SEED)
        from repro.workloads.registry import materialize_trace

        record = drive_memory_boundary(
            machine, materialize_trace(TINY), seed=SEED
        )
        base = sorted(record.golden)[0]
        record.golden[base] = b"\xff" * len(record.golden[base])
        machine.mee.crash()
        report = run_oracle(machine.mee, record)
        assert report.verdict == VERDICT_SILENT
        assert report.blocks_diverged == 1
        assert report.first_divergence

    def test_clean_recovery_reports_recovered(self):
        machine = build_machine(CONFIG, "strict", functional=True, seed=SEED)
        from repro.workloads.registry import materialize_trace

        record = drive_memory_boundary(
            machine, materialize_trace(TINY), seed=SEED
        )
        machine.mee.crash()
        report = run_oracle(machine.mee, record)
        assert report.verdict == VERDICT_RECOVERED
        assert report.pages_inconsistent == 0
        assert report.blocks_diverged == 0


#: Every registered crash-consistent protocol. ``amnt-multi`` rides
#: along even though the issue's list stops at static-hybrid.
ALL_PROTOCOLS = (
    "leaf", "strict", "anubis", "osiris", "bmf",
    "amnt", "amnt++", "amnt-multi", "triad", "plp",
)


class TestEveryPhaseBoundary:
    """Crash at phase boundaries across every registered protocol:
    recovery must succeed and the oracle must never see silent
    divergence (the tentpole property, as a test)."""

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_phase_boundary_crashes_recover(self, protocol):
        probe = run_fault_cell(tiny_cell(protocol), CONFIG)
        assert probe.verdict == VERDICT_BASELINE
        for phase, count in probe.phase_counts:
            for ordinal in spread_ordinals(count, 3):
                outcome = run_fault_cell(
                    tiny_cell(
                        protocol, CrashTrigger("phase", ordinal, phase)
                    ),
                    CONFIG,
                )
                label = f"{protocol} {phase}@{ordinal}"
                assert outcome.verdict == VERDICT_RECOVERED, (
                    f"{label}: {outcome.verdict} {outcome.recovery_detail} "
                    f"{outcome.first_divergence}"
                )
                assert outcome.anomaly == "", label

    def test_amntpp_restructure_window_exists(self):
        # The modified-OS migration pass must actually be crashable:
        # a longer trace reaches the churn interval several times.
        spec = FaultCampaignSpec(
            protocol="amnt++",
            trace=profile_spec("faults", "hotshift", 2500, SEED),
            seed=SEED,
        )
        probe = run_fault_cell(spec, CONFIG)
        counts = dict(probe.phase_counts)
        assert counts.get(PHASE_AMNTPP_RESTRUCTURE, 0) > 0
        outcome = run_fault_cell(
            FaultCampaignSpec(
                protocol="amnt++",
                trace=spec.trace,
                trigger=CrashTrigger("phase", 1, PHASE_AMNTPP_RESTRUCTURE),
                seed=SEED,
            ),
            CONFIG,
        )
        assert outcome.verdict == VERDICT_RECOVERED
        assert outcome.crash_phase == PHASE_AMNTPP_RESTRUCTURE


class TestCampaignReport:
    def test_campaign_writes_self_describing_json(self, tmp_path):
        from repro.bench.export import load_experiment

        report = run_campaign(
            ["leaf"],
            [TINY],
            config=CONFIG,
            crash_every=200,
            tamper_crashes=1,
            phase_samples=1,
            seed=SEED,
        )
        assert not report.silent_cells()
        assert not report.anomalies()
        path = tmp_path / "campaign.json"
        report.write_json(path)
        document = load_experiment(path)
        assert document["experiment"] == "fault-campaign"
        summary = document["data"]["summary"]
        assert summary["silent_divergence"] == 0
        assert summary["cells"] == len(report.cells)
        assert document["parameters"]["protocols"] == ["leaf"]

    def test_phase_breakdown_covers_movement(self):
        report = run_campaign(
            ["amnt"],
            [TINY],
            config=CONFIG,
            phase_samples=1,
            seed=SEED,
        )
        assert PHASE_AMNT_MOVEMENT in report.phase_occurrences()
        assert PHASE_AMNT_MOVEMENT in report.by_phase()
