"""Crash injection and the Table 4 analytic recovery model."""

import pytest

from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import (
    TABLE4_MEMORY_SIZES,
    CrashInjector,
    RecoveryAnalysis,
    RecoveryOutcome,
)
from repro.errors import RecoveryError
from repro.util.units import MB, TB


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


class TestCrashInjector:
    def test_requires_functional_engine(self, config):
        mee = MemoryEncryptionEngine(config, make_protocol("leaf", config))
        with pytest.raises(RecoveryError):
            CrashInjector(mee)

    @pytest.mark.parametrize(
        "protocol", ["strict", "leaf", "osiris", "anubis", "bmf", "amnt"]
    )
    def test_every_consistent_protocol_recovers(self, config, protocol):
        mee = MemoryEncryptionEngine(
            config, make_protocol(protocol, config), functional=True
        )
        payloads = {}
        for i in range(30):
            addr = (i * 7) % 16 * 4096 + (i % 3) * 64
            payloads[addr] = bytes([i + 1]) * 64
            mee.write_block(addr, data=payloads[addr])
        outcome = CrashInjector(mee).crash_and_recover()
        assert outcome.ok, outcome.detail
        for addr, payload in payloads.items():
            assert mee.read_block_data(addr) == payload

    def test_volatile_protocol_cannot_recover(self, config):
        mee = MemoryEncryptionEngine(
            config, make_protocol("volatile", config), functional=True
        )
        mee.write_block(0, data=b"\x01" * 64)
        outcome = CrashInjector(mee).crash_and_recover()
        assert not outcome.ok

    def test_outcome_truthiness(self):
        assert RecoveryOutcome("x", True, 0)
        assert not RecoveryOutcome("x", False, 0)

    def test_double_crash_recover_cycles(self, config):
        """The system survives repeated crash/recover cycles."""
        mee = MemoryEncryptionEngine(
            config, make_protocol("amnt", config), functional=True
        )
        injector = CrashInjector(mee)
        for round_number in range(3):
            payload = bytes([round_number + 1]) * 64
            for _ in range(70):  # past the selection interval
                mee.write_block(0, data=payload)
            assert injector.crash_and_recover().ok
            assert mee.read_block_data(0) == payload


class TestRecoveryAnalysis:
    @pytest.fixture
    def analysis(self):
        return RecoveryAnalysis(default_config())

    def test_table4_leaf_row(self, analysis):
        # Paper: 6,222.21 / 49,777.78 / 398,222.21 ms.
        assert analysis.recovery_ms("leaf", 2 * TB) == pytest.approx(
            6222.21, rel=1e-4
        )
        assert analysis.recovery_ms("leaf", 16 * TB) == pytest.approx(
            49777.78, rel=1e-4
        )
        assert analysis.recovery_ms("leaf", 128 * TB) == pytest.approx(
            398222.21, rel=1e-4
        )

    def test_table4_strict_and_bmf_rows_are_zero(self, analysis):
        for protocol in ("strict", "bmf"):
            for memory in TABLE4_MEMORY_SIZES:
                assert analysis.recovery_ms(protocol, memory) == 0.0

    def test_table4_anubis_row_fixed(self, analysis):
        values = {
            analysis.recovery_ms("anubis", memory)
            for memory in TABLE4_MEMORY_SIZES
        }
        assert len(values) == 1
        assert values.pop() == pytest.approx(1.30, abs=0.01)

    def test_table4_amnt_rows(self, analysis):
        # AMNT L3, 2 TB: paper reports 97.22 ms.
        assert analysis.recovery_ms("amnt", 2 * TB, subtree_level=3) == (
            pytest.approx(97.22, rel=1e-3)
        )
        assert analysis.recovery_ms("amnt", 2 * TB, subtree_level=4) == (
            pytest.approx(12.15, rel=1e-2)
        )

    def test_table4_osiris_row(self, analysis):
        # Paper: 50,666.67 ms at 2 TB (~8.1x leaf).
        measured = analysis.recovery_ms("osiris", 2 * TB)
        assert measured == pytest.approx(50666.67, rel=0.05)

    def test_stale_fractions(self, analysis):
        assert analysis.stale_fraction("leaf") == 1.0
        assert analysis.stale_fraction("strict") == 0.0
        assert analysis.stale_fraction("amnt", subtree_level=2) == (
            pytest.approx(0.125)
        )
        assert analysis.stale_fraction("amnt", subtree_level=3) == (
            pytest.approx(1 / 64)
        )

    def test_table4_structure(self, analysis):
        table = analysis.table4()
        labels = [row["protocol"] for row in table]
        assert "AMNT L3" in labels
        assert "leaf" in labels
        for row in table:
            assert "2.00TB" in row
            assert "stale_fraction" in row
