"""The reference wall-clock benchmark: interleaved best-of-N legs."""

import pytest

from repro.bench.perf import format_report, run_reference_bench
from repro.sim.parallel import default_workers


@pytest.fixture(scope="module")
def report():
    """Tiny grid, two interleaved rounds, every applicable leg."""
    return run_reference_bench(
        workers=1,
        benchmarks=("blackscholes",),
        protocols=("leaf", "strict"),
        accesses=300,
        output=None,
        rounds=2,
    )


class TestInterleavedLegs:
    def test_every_leg_sampled_every_round(self, report):
        samples = report["samples_seconds"]
        expected = {
            "serial_uncached",
            "serial",
            "serial_telemetry",
            "serial_replay",
            "serial_plan",
            "store_cold",
            "warm_sweep",
        }
        if report["legs"].get("parallel") == "measured":
            expected.add("parallel")
        assert set(samples) == expected
        assert all(len(values) == 2 for values in samples.values())

    def test_headline_is_best_of_rounds(self, report):
        for leg, values in report["samples_seconds"].items():
            assert report["timings_seconds"][leg] == pytest.approx(
                min(values), abs=1e-4
            )

    def test_timing_method_recorded(self, report):
        assert report["timing_method"] == {
            "strategy": "interleaved-best-of",
            "rounds": 2,
        }

    def test_speedups_derive_from_best(self, report):
        timings = report["timings_seconds"]
        assert report["speedups"]["trace_cache"] == pytest.approx(
            timings["serial_uncached"] / timings["serial"]
        )
        assert report["speedups"]["replay_vs_serial"] == pytest.approx(
            timings["serial"] / timings["serial_replay"]
        )
        assert report["speedups"]["plan_vs_serial"] == pytest.approx(
            timings["serial"] / timings["serial_plan"]
        )
        assert report["speedups"]["plan_vs_replay"] == pytest.approx(
            timings["serial_replay"] / timings["serial_plan"]
        )

    def test_skip_uncached_drops_leg(self):
        report = run_reference_bench(
            workers=1,
            benchmarks=("blackscholes",),
            protocols=("leaf",),
            accesses=300,
            output=None,
            include_uncached=False,
            rounds=1,
        )
        assert report["timings_seconds"]["serial_uncached"] is None
        assert "serial_uncached" not in report["samples_seconds"]
        assert report["speedups"]["trace_cache"] is None

    def test_skip_replay_drops_leg(self):
        report = run_reference_bench(
            workers=1,
            benchmarks=("blackscholes",),
            protocols=("leaf",),
            accesses=300,
            output=None,
            include_uncached=False,
            include_replay=False,
            rounds=1,
        )
        assert report["timings_seconds"]["serial_replay"] is None
        assert "serial_replay" not in report["samples_seconds"]
        assert report["speedups"]["replay_vs_serial"] is None

    def test_skip_plan_drops_leg(self):
        report = run_reference_bench(
            workers=1,
            benchmarks=("blackscholes",),
            protocols=("leaf",),
            accesses=300,
            output=None,
            include_uncached=False,
            include_plan=False,
            rounds=1,
        )
        assert report["timings_seconds"]["serial_plan"] is None
        assert "serial_plan" not in report["samples_seconds"]
        assert report["speedups"]["plan_vs_serial"] is None
        assert report["speedups"]["plan_vs_replay"] is None

    def test_skip_store_drops_legs(self):
        report = run_reference_bench(
            workers=1,
            benchmarks=("blackscholes",),
            protocols=("leaf",),
            accesses=300,
            output=None,
            include_uncached=False,
            include_store=False,
            rounds=1,
        )
        assert report["timings_seconds"]["store_cold"] is None
        assert report["timings_seconds"]["warm_sweep"] is None
        assert "store_cold" not in report["samples_seconds"]
        assert report["speedups"]["warm_vs_cold"] is None
        assert "store" not in report

    def test_store_legs_cold_then_all_hits(self, report):
        """Cold computes + writes every cell; warm replays the same
        round's store with zero misses."""
        cells = report["grid"]["cells"]
        store = report["store"]
        assert store["cold_session"]["misses"] == cells
        assert store["cold_session"]["puts"] == cells
        assert store["warm_session"]["hits"] == cells
        assert store["warm_session"]["misses"] == 0
        assert report["speedups"]["warm_vs_cold"] == pytest.approx(
            report["timings_seconds"]["store_cold"]
            / report["timings_seconds"]["warm_sweep"]
        )

    def test_rounds_must_be_positive(self):
        with pytest.raises(ValueError):
            run_reference_bench(
                benchmarks=("blackscholes",),
                protocols=("leaf",),
                accesses=300,
                output=None,
                rounds=0,
            )

    def test_format_report_shows_samples(self, report):
        text = format_report(report)
        assert "best of 2 interleaved round(s)" in text
        assert "samples:" in text

    def test_history_appends_and_returns_previous(self, tmp_path):
        from repro.bench.perf import format_history_delta
        from repro.util.atomicio import read_jsonl

        log = tmp_path / "BENCH_history.jsonl"
        kwargs = dict(
            workers=1,
            benchmarks=("blackscholes",),
            protocols=("leaf",),
            accesses=300,
            output=None,
            include_uncached=False,
            include_telemetry=False,
            rounds=1,
            history=log,
        )
        first = run_reference_bench(**kwargs)
        assert first["history"]["previous"] is None
        assert "first recorded run" in format_history_delta(
            first, first["history"]["previous"]
        )
        second = run_reference_bench(**kwargs)
        previous = second["history"]["previous"]
        assert previous is not None
        assert previous["timings_seconds"]["serial"] == pytest.approx(
            first["timings_seconds"]["serial"], abs=1e-4
        )
        entries = read_jsonl(log)
        assert len(entries) == 2
        for entry in entries:
            assert entry["recorded_at"]
            assert entry["grid"]["cells"] == 1
        delta = format_history_delta(second, previous)
        assert "vs previous run" in delta
        assert "serial" in delta

    def test_parallel_leg_honest_on_single_cpu(self, report):
        """A pool on one visible core measures fork overhead, not the
        runner — the leg must be skipped and say so, never recorded as
        a sub-1.0x 'speedup'."""
        if default_workers() > 1:
            assert report["legs"]["parallel"] == "measured"
            assert report["timings_seconds"]["parallel"] is not None
        else:
            assert report["legs"]["parallel"] == "skipped_single_cpu"
            assert report["timings_seconds"]["parallel"] is None
            assert report["speedups"]["parallel_vs_serial"] is None
            assert "parallel" not in report["samples_seconds"]
            assert "skipped" in format_report(report)
