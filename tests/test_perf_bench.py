"""The reference wall-clock benchmark: interleaved best-of-N legs."""

import pytest

from repro.bench.perf import format_report, run_reference_bench


@pytest.fixture(scope="module")
def report():
    """Tiny grid, two interleaved rounds, all three legs."""
    return run_reference_bench(
        workers=1,
        benchmarks=("blackscholes",),
        protocols=("leaf", "strict"),
        accesses=300,
        output=None,
        rounds=2,
    )


class TestInterleavedLegs:
    def test_every_leg_sampled_every_round(self, report):
        samples = report["samples_seconds"]
        assert set(samples) == {"serial_uncached", "serial", "parallel"}
        assert all(len(values) == 2 for values in samples.values())

    def test_headline_is_best_of_rounds(self, report):
        for leg, values in report["samples_seconds"].items():
            assert report["timings_seconds"][leg] == pytest.approx(
                min(values), abs=1e-4
            )

    def test_timing_method_recorded(self, report):
        assert report["timing_method"] == {
            "strategy": "interleaved-best-of",
            "rounds": 2,
        }

    def test_speedups_derive_from_best(self, report):
        timings = report["timings_seconds"]
        assert report["speedups"]["trace_cache"] == pytest.approx(
            timings["serial_uncached"] / timings["serial"]
        )

    def test_skip_uncached_drops_leg(self):
        report = run_reference_bench(
            workers=1,
            benchmarks=("blackscholes",),
            protocols=("leaf",),
            accesses=300,
            output=None,
            include_uncached=False,
            rounds=1,
        )
        assert report["timings_seconds"]["serial_uncached"] is None
        assert "serial_uncached" not in report["samples_seconds"]
        assert report["speedups"]["trace_cache"] is None

    def test_rounds_must_be_positive(self):
        with pytest.raises(ValueError):
            run_reference_bench(
                benchmarks=("blackscholes",),
                protocols=("leaf",),
                accesses=300,
                output=None,
                rounds=0,
            )

    def test_format_report_shows_samples(self, report):
        text = format_report(report)
        assert "best of 2 interleaved round(s)" in text
        assert "samples:" in text
