"""The binary buddy allocator: splits, coalescing, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.os.buddy import BuddyAllocator, FreeChunk
from repro.util.rng import make_rng


@pytest.fixture
def allocator():
    return BuddyAllocator(total_pages=1024, max_order=5)


class TestAllocation:
    def test_order0_allocation(self, allocator):
        pfn = allocator.alloc_pages(0)
        assert 0 <= pfn < 1024
        assert allocator.free_pages_total() == 1023

    def test_alloc_splits_higher_orders(self, allocator):
        # Seeded with order-5 chunks only; an order-0 request forces a
        # chain of splits whose buddies land on the lower lists.
        allocator.alloc_pages(0)
        for order in range(5):
            assert len(allocator.free_area[order]) == 1

    def test_order_alignment(self, allocator):
        pfn = allocator.alloc_pages(3)
        assert pfn % 8 == 0

    def test_out_of_range_order(self, allocator):
        with pytest.raises(AllocationError):
            allocator.alloc_pages(6)

    def test_exhaustion_raises(self):
        allocator = BuddyAllocator(total_pages=4, max_order=2)
        allocator.alloc_pages(2)
        with pytest.raises(AllocationError):
            allocator.alloc_pages(0)

    def test_distinct_allocations_never_overlap(self, allocator):
        seen = set()
        for _ in range(64):
            pfn = allocator.alloc_pages(1)
            span = {pfn, pfn + 1}
            assert not span & seen
            seen |= span


class TestFree:
    def test_free_restores_capacity(self, allocator):
        pfn = allocator.alloc_pages(0)
        allocator.free_pages(pfn, 0)
        assert allocator.free_pages_total() == 1024

    def test_buddies_coalesce_back_to_max_order(self, allocator):
        pfn = allocator.alloc_pages(0)
        allocator.free_pages(pfn, 0)
        # Everything coalesced: only max-order chunks remain.
        assert all(not allocator.free_area[o] for o in range(5))
        assert len(allocator.free_area[5]) == 32

    def test_no_coalesce_while_buddy_held(self, allocator):
        a = allocator.alloc_pages(0)
        b = allocator.alloc_pages(0)
        allocator.free_pages(a, 0)
        # b (its buddy) is still held: the page stays at order 0.
        assert a in allocator.free_area[0]
        allocator.free_pages(b, 0)

    def test_misaligned_free_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.free_pages(3, 2)

    def test_out_of_range_free_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.free_pages(4096, 0)


class TestConstruction:
    def test_non_power_total_rejected(self):
        with pytest.raises(AllocationError):
            BuddyAllocator(total_pages=1000)

    def test_max_order_bounded_by_total(self):
        with pytest.raises(AllocationError):
            BuddyAllocator(total_pages=4, max_order=3)

    def test_freshly_built_is_fully_free(self, allocator):
        assert allocator.free_pages_total() == 1024


class TestInstructionAccounting:
    def test_allocations_cost_instructions(self, allocator):
        before = allocator.instructions()
        allocator.alloc_pages(0)
        assert allocator.instructions() > before

    def test_counters_track_events(self, allocator):
        pfn = allocator.alloc_pages(0)
        allocator.free_pages(pfn, 0)
        assert allocator.stats.get("allocations") == 1
        assert allocator.stats.get("frees") == 1


class TestAging:
    def test_scatter_produces_shuffled_free_pages(self, allocator):
        produced = allocator.scatter(make_rng(7), span_chunks=4)
        assert produced == 64  # half of 4 * 32 pages (even frames)
        head = [allocator.alloc_pages(0) for _ in range(16)]
        assert head != sorted(head)  # no longer contiguous
        assert all(pfn % 2 == 0 for pfn in head)

    def test_fragment_keeps_allocator_usable(self, allocator):
        allocator.fragment(make_rng(7), churn_allocations=64)
        pfn = allocator.alloc_pages(0)
        assert 0 <= pfn < 1024

    def test_free_chunks_view(self, allocator):
        chunks = allocator.free_chunks()
        assert set(chunks) == {FreeChunk(pfn, 5) for pfn in range(0, 1024, 32)}
        assert chunks[0].pages == 32


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(st.integers(min_value=0, max_value=3), max_size=120),
)
def test_conservation_under_random_alloc_free(ops):
    """Total pages (free + held) is invariant; frees always coalesce to
    a state from which everything can be reallocated."""
    allocator = BuddyAllocator(total_pages=256, max_order=4)
    held = []
    for op in ops:
        if op == 0 and held:
            pfn, order = held.pop()
            allocator.free_pages(pfn, order)
        else:
            order = op % 3
            try:
                held.append((allocator.alloc_pages(order), order))
            except AllocationError:
                pass
        held_pages = sum(1 << order for _, order in held)
        assert allocator.free_pages_total() + held_pages == 256
    for pfn, order in held:
        allocator.free_pages(pfn, order)
    assert allocator.free_pages_total() == 256
    # Fully coalesced again: one max-order chunk per 16 pages.
    assert len(allocator.free_area[4]) == 16
