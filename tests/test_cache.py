"""Generic set-associative cache: LRU, dirty bits, eviction, crash."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache, build_cache
from repro.errors import CacheError


@pytest.fixture
def tiny():
    """Direct-control cache: 2 sets x 2 ways, identity set mapping."""
    return SetAssociativeCache(2, 2, name="tiny", set_of=lambda key: key)


class TestLookupInsert:
    def test_miss_then_hit(self, tiny):
        assert not tiny.lookup(0)
        tiny.insert(0)
        assert tiny.lookup(0)

    def test_insert_returns_victim_when_full(self, tiny):
        tiny.insert(0)  # set 0
        tiny.insert(2)  # set 0
        victim = tiny.insert(4)  # set 0 again: evicts LRU (0)
        assert victim is not None
        assert victim.key == 0

    def test_lru_order_respects_recency(self, tiny):
        tiny.insert(0)
        tiny.insert(2)
        tiny.lookup(0)  # 0 becomes MRU; 2 is now LRU
        victim = tiny.insert(4)
        assert victim.key == 2

    def test_reinsert_refreshes_without_eviction(self, tiny):
        tiny.insert(0)
        tiny.insert(2)
        assert tiny.insert(0) is None

    def test_contains_has_no_side_effects(self, tiny):
        tiny.insert(0)
        tiny.insert(2)
        tiny.contains(0)  # must NOT refresh recency
        victim = tiny.insert(4)
        assert victim.key == 0

    def test_sets_isolate(self, tiny):
        tiny.insert(0)
        tiny.insert(2)
        victim = tiny.insert(1)  # set 1: no eviction
        assert victim is None


class TestDirtyBits:
    def test_insert_dirty(self, tiny):
        tiny.insert(0, dirty=True)
        assert tiny.is_dirty(0)

    def test_mark_and_clean(self, tiny):
        tiny.insert(0)
        tiny.mark_dirty(0)
        assert tiny.is_dirty(0)
        tiny.clean(0)
        assert not tiny.is_dirty(0)

    def test_mark_dirty_missing_raises(self, tiny):
        with pytest.raises(CacheError):
            tiny.mark_dirty(99)

    def test_reinsert_never_cleans(self, tiny):
        tiny.insert(0, dirty=True)
        tiny.insert(0, dirty=False)
        assert tiny.is_dirty(0)

    def test_eviction_reports_dirtiness(self, tiny):
        tiny.insert(0, dirty=True)
        tiny.insert(2)
        victim = tiny.insert(4)
        assert victim.key == 0 and victim.dirty

    def test_dirty_lines_iterator(self, tiny):
        tiny.insert(0, dirty=True)
        tiny.insert(1)
        assert [line.key for line in tiny.dirty_lines()] == [0]


class TestInvalidateAndDrop:
    def test_invalidate(self, tiny):
        tiny.insert(0, dirty=True)
        evicted = tiny.invalidate(0)
        assert evicted.dirty
        assert not tiny.contains(0)

    def test_invalidate_missing_returns_none(self, tiny):
        assert tiny.invalidate(5) is None

    def test_drop_all_models_power_loss(self, tiny):
        tiny.insert(0, dirty=True)
        tiny.insert(1)
        dropped = tiny.drop_all()
        assert len(dropped) == 2
        assert tiny.occupancy() == 0

    def test_flush_all_counts(self, tiny):
        tiny.insert(0, dirty=True)
        flushed = tiny.flush_all()
        assert flushed[0].dirty
        assert tiny.stats.get("flushes") == 1


class TestStats:
    def test_hit_rate(self, tiny):
        tiny.lookup(0)  # miss
        tiny.insert(0)
        tiny.lookup(0)  # hit
        assert tiny.hit_rate() == pytest.approx(0.5)

    def test_hit_rate_empty_is_zero(self, tiny):
        assert tiny.hit_rate() == 0.0


class TestBuildCache:
    def test_sizes_from_capacity(self):
        cache = build_cache(64 * 1024, 64, 8, name="md")
        assert cache.num_sets == 128
        assert cache.capacity_lines == 1024

    def test_rejects_uneven_division(self):
        with pytest.raises(CacheError):
            build_cache(64 * 1024, 64, 3, name="bad")

    def test_rejects_non_power_sets(self):
        with pytest.raises(CacheError):
            SetAssociativeCache(3, 2)

    def test_tuple_and_string_keys_work(self):
        cache = build_cache(4096, 64, 4, name="k")
        cache.insert(("node", 3, 7))
        cache.insert("stringkey")
        assert cache.contains(("node", 3, 7))
        assert cache.contains("stringkey")

    def test_unsupported_key_type_raises(self):
        cache = build_cache(4096, 64, 4, name="k")
        with pytest.raises(CacheError):
            cache.insert(3.14)


@settings(max_examples=50, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["insert", "lookup", "invalidate"]),
                  st.integers(min_value=0, max_value=63)),
        max_size=200,
    )
)
def test_cache_invariants_under_random_ops(operations):
    """Occupancy never exceeds capacity; a set never holds duplicates;
    every inserted key is either resident or was evicted/invalidated."""
    cache = SetAssociativeCache(4, 2, set_of=lambda key: key)
    for op, key in operations:
        if op == "insert":
            cache.insert(key, dirty=key % 2 == 0)
        elif op == "lookup":
            cache.lookup(key)
        else:
            cache.invalidate(key)
        assert cache.occupancy() <= cache.capacity_lines
        keys = [line.key for line in cache.lines()]
        assert len(keys) == len(set(keys))
        for bucket in cache._sets:
            assert len(bucket) <= cache.associativity
