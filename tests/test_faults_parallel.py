"""Serial vs. parallel fault campaigns must be bit-identical.

Mirrors ``test_parallel.py``: every cell outcome is a pure function of
*(spec, config)*, so a campaign fanned out over pool workers has to
reproduce the serial run cell for cell — same verdicts, same golden
divergence counts, same tamper details, same phase tallies.
"""

import pytest

from repro.faults import (
    FaultCampaignSpec,
    default_fault_config,
    run_campaign,
    run_fault_cell,
)
from repro.faults.triggers import CrashTrigger
from repro.util.units import MB
from repro.workloads.registry import profile_spec

SEED = 2024
CONFIG = default_fault_config(capacity_bytes=16 * MB)
TRACES = [profile_spec("faults", "hotshift", 800, SEED)]


def small_campaign(workers):
    return run_campaign(
        ["amnt", "strict"],
        TRACES,
        config=CONFIG,
        crash_every=250,
        phase_samples=1,
        tamper_crashes=1,
        seed=SEED,
        workers=workers,
    )


class TestCampaignEquivalence:
    def test_parallel_matches_serial_cell_for_cell(self):
        serial = small_campaign(workers=1)
        parallel = small_campaign(workers=3)
        assert len(serial.cells) == len(parallel.cells)
        for left, right in zip(serial.cells, parallel.cells):
            assert left == right, (left, right)
        assert serial.baselines == parallel.baselines
        assert serial.summary() == serial.summary()
        assert serial.summary() == parallel.summary()

    def test_same_seed_same_report(self):
        first = small_campaign(workers=1)
        second = small_campaign(workers=1)
        assert first.cells == second.cells
        assert first.baselines == second.baselines

    def test_seed_changes_tamper_sites(self):
        spec = FaultCampaignSpec(
            protocol="leaf",
            trace=TRACES[0],
            trigger=CrashTrigger("access", 400),
            tamper="data",
            seed=SEED,
        )
        reseeded = FaultCampaignSpec(
            protocol="leaf",
            trace=TRACES[0],
            trigger=CrashTrigger("access", 400),
            tamper="data",
            seed=SEED + 1,
        )
        first = run_fault_cell(spec, CONFIG)
        second = run_fault_cell(reseeded, CONFIG)
        assert first.tamper_detail != second.tamper_detail
        assert first.verdict == second.verdict == "detected"


class TestCellPurity:
    def test_cell_is_pure_function_of_spec_and_config(self):
        spec = FaultCampaignSpec(
            protocol="amnt",
            trace=TRACES[0],
            trigger=CrashTrigger("access", 500),
            seed=SEED,
        )
        assert run_fault_cell(spec, CONFIG) == run_fault_cell(spec, CONFIG)

    def test_spec_is_picklable(self):
        import pickle

        spec = FaultCampaignSpec(
            protocol="amnt",
            trace=TRACES[0],
            trigger=CrashTrigger("phase", 2, "mdcache_eviction"),
            tamper="counter",
            seed=SEED,
        )
        assert pickle.loads(pickle.dumps(spec)) == spec
