"""The AMNT hot-region history buffer (Section 4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history_buffer import HistoryBuffer


class TestRecording:
    def test_empty_has_no_head(self):
        assert HistoryBuffer().head_region() is None

    def test_single_record_becomes_head(self):
        buffer = HistoryBuffer()
        buffer.record(5)
        assert buffer.head_region() == 5
        assert buffer.head_count() == 1

    def test_most_frequent_region_reaches_head(self):
        buffer = HistoryBuffer()
        for region in (1, 2, 2, 2, 3):
            buffer.record(region)
        assert buffer.head_region() == 2

    def test_tie_keeps_incumbent(self):
        # Section 4.2: "In the event of a tie, the current subtree root
        # stays at the head of the buffer."
        buffer = HistoryBuffer()
        buffer.record(1)
        buffer.record(2)  # tie at 1 each: 1 stays
        assert buffer.head_region() == 1
        buffer.record(2)  # now strictly greater
        assert buffer.head_region() == 2

    def test_negative_region_rejected(self):
        with pytest.raises(ValueError):
            HistoryBuffer().record(-1)

    def test_capacity_minimum(self):
        with pytest.raises(ValueError):
            HistoryBuffer(capacity=1)


class TestEviction:
    def test_full_buffer_displaces_least_counted_non_head(self):
        buffer = HistoryBuffer(capacity=2)
        buffer.record(1)
        buffer.record(1)
        buffer.record(2)
        buffer.record(3)  # displaces 2 (count 1), never head (1)
        regions = [region for region, _ in buffer.contents()]
        assert 1 in regions
        assert 3 in regions
        assert 2 not in regions

    def test_head_never_displaced(self):
        buffer = HistoryBuffer(capacity=2)
        for _ in range(5):
            buffer.record(9)
        for region in (1, 2, 3):
            buffer.record(region)
        assert buffer.head_region() == 9


class TestInterval:
    def test_interval_complete_after_capacity_writes(self):
        buffer = HistoryBuffer(capacity=4)
        for i in range(3):
            buffer.record(i % 2)
            assert not buffer.interval_complete()
        buffer.record(0)
        assert buffer.interval_complete()

    def test_reset_zeroes_counters_and_keeps_incumbent(self):
        buffer = HistoryBuffer(capacity=4)
        for _ in range(4):
            buffer.record(7)
        buffer.reset_interval(keep_region=7)
        assert buffer.recorded_writes == 0
        assert buffer.head_region() == 7
        assert buffer.head_count() == 0

    def test_reset_without_keeper_empties(self):
        buffer = HistoryBuffer()
        buffer.record(1)
        buffer.reset_interval()
        assert buffer.head_region() is None


class TestArea:
    def test_default_buffer_is_768_bits(self):
        # 64 entries x (6 index bits + 6 counter bits) — Table 3's 96 B.
        assert HistoryBuffer(capacity=64).area_bits == 768

    def test_area_scales_with_capacity(self):
        assert HistoryBuffer(capacity=128).area_bits == 128 * 14


@settings(max_examples=100, deadline=None)
@given(
    regions=st.lists(st.integers(min_value=0, max_value=15), max_size=300),
    capacity=st.sampled_from([2, 4, 8, 64]),
)
def test_head_max_invariant_property(regions, capacity):
    """The hardware invariant: the head always holds the maximum count,
    no matter the recording sequence."""
    buffer = HistoryBuffer(capacity=capacity)
    for region in regions:
        buffer.record(region)
        assert buffer.check_head_invariant()
        assert len(buffer.contents()) <= capacity
