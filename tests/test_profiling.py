"""The profiling subsystem: phase attribution, schema, CLI artifact."""

import json

import pytest

from repro.bench.profiling import (
    MEASURED_PHASES,
    PROFILE_SCHEMA,
    format_profile,
    profile_run,
    validate_profile_document,
    write_profile_artifact,
)
from repro.cli import main


@pytest.fixture(scope="module")
def document():
    """One small timing-mode profile, shared across the module."""
    return profile_run(
        benchmark="blackscholes",
        protocol="leaf",
        accesses=1500,
        seed=11,
        capture_cprofile=True,
        top=5,
    )


class TestProfileRun:
    def test_schema_valid(self, document):
        assert validate_profile_document(document) == []

    def test_schema_tag(self, document):
        assert document["schema"] == PROFILE_SCHEMA

    def test_all_phases_measured(self, document):
        for name in MEASURED_PHASES + ("engine_other", "total"):
            assert document["phases"][name] >= 0.0

    def test_engine_subphases_partition_engine(self, document):
        phases = document["phases"]
        parts = phases["mee"] + phases["bmt"] + phases["engine_other"]
        assert parts == pytest.approx(phases["engine"], rel=1e-3, abs=1e-5)

    def test_timing_mode_has_no_bmt_time(self, document):
        assert document["phases"]["bmt"] == 0.0

    def test_result_matches_sweep_semantics(self, document):
        assert document["result"]["accesses"] == 1500
        assert document["result"]["cycles"] > 0

    def test_hotspots_captured_and_bounded(self, document):
        hotspots = document["hotspots"]
        assert 0 < len(hotspots) <= 5
        assert all(row["tottime"] >= 0 for row in hotspots)

    def test_fractions_sum_to_one(self, document):
        fractions = document["phase_fractions"]
        top_level = (
            fractions["trace_gen"]
            + fractions["setup"]
            + fractions["engine"]
            + fractions["export"]
        )
        assert top_level == pytest.approx(1.0, abs=0.01)

    def test_functional_run_attributes_bmt(self):
        doc = profile_run(
            benchmark="blackscholes",
            protocol="leaf",
            accesses=400,
            seed=11,
            functional=True,
            integrity_mode="lazy",
            capture_cprofile=False,
        )
        assert validate_profile_document(doc) == []
        assert doc["phases"]["bmt"] > 0.0
        assert doc["hotspots"] == []

    def test_unknown_integrity_mode_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            profile_run(integrity_mode="never")

    def test_plan_run_measures_boundary_plan(self):
        doc = profile_run(
            benchmark="blackscholes",
            protocol="leaf",
            accesses=1500,
            seed=11,
            capture_cprofile=False,
            replay=True,
            plan=True,
        )
        assert validate_profile_document(doc) == []
        assert doc["run"]["replay"] is True
        assert doc["run"]["plan"] is True
        assert doc["phases"]["boundary_compile"] > 0.0
        assert doc["phases"]["boundary_plan"] > 0.0
        # The planned replay produces the same result as the direct run.
        direct = profile_run(
            benchmark="blackscholes",
            protocol="leaf",
            accesses=1500,
            seed=11,
            capture_cprofile=False,
        )
        assert doc["result"] == direct["result"]

    def test_plan_requires_replay(self):
        with pytest.raises(ValueError):
            profile_run(
                benchmark="blackscholes",
                protocol="leaf",
                accesses=100,
                capture_cprofile=False,
                plan=True,
            )


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_profile_document([]) != []

    def test_rejects_wrong_schema(self, document):
        bad = dict(document, schema="repro.profile/v0")
        assert any("schema" in p for p in validate_profile_document(bad))

    def test_rejects_missing_phase(self, document):
        bad = dict(document, phases={"engine": 1.0})
        assert any("phases" in p for p in validate_profile_document(bad))

    def test_rejects_negative_phase(self, document):
        phases = dict(document["phases"], engine=-0.1)
        bad = dict(document, phases=phases)
        assert any("engine" in p for p in validate_profile_document(bad))

    def test_rejects_malformed_hotspots(self, document):
        bad = dict(document, hotspots=[{"tottime": 1.0}])
        assert any("hotspots" in p for p in validate_profile_document(bad))


class TestArtifactAndCli:
    def test_artifact_roundtrip(self, document, tmp_path):
        path = tmp_path / "PROFILE_run.json"
        write_profile_artifact(document, path)
        assert validate_profile_document(json.loads(path.read_text())) == []

    def test_format_profile_mentions_phases(self, document):
        text = format_profile(document)
        for name in ("trace_gen", "engine", "mee", "bmt", "export"):
            assert name in text

    def test_cli_writes_valid_artifact(self, tmp_path, capsys):
        out = tmp_path / "PROFILE_cli.json"
        code = main(
            [
                "profile",
                "blackscholes",
                "--protocol",
                "leaf",
                "--accesses",
                "1000",
                "--no-cprofile",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert "phase attribution" in capsys.readouterr().out
        assert validate_profile_document(json.loads(out.read_text())) == []

    def test_cli_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["profile", "nosuchbench", "--output", ""])
