"""Osiris: stop-loss persistence and MAC-probing recovery."""

import pytest

from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import CrashInjector
from repro.errors import CrashConsistencyError
from repro.mem.backend import MetadataRegion
from repro.mem.bandwidth import RecoveryBandwidthModel
from repro.util.units import MB, TB


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


def engine_for(config, functional=False):
    return MemoryEncryptionEngine(
        config, make_protocol("osiris", config), functional=functional
    )


class TestStopLoss:
    def test_counter_persists_every_nth_update(self, config):
        mee = engine_for(config)
        interval = config.osiris.stop_loss_interval
        for i in range(interval - 1):
            mee.write_block(0)
            assert mee.nvm.persists(MetadataRegion.COUNTERS) == 0, i
        mee.write_block(0)
        assert mee.nvm.persists(MetadataRegion.COUNTERS) == 1

    def test_counters_tracked_per_line(self, config):
        mee = engine_for(config)
        interval = config.osiris.stop_loss_interval
        # Alternate between two pages: neither reaches the stop-loss
        # threshold until it individually accumulates n updates.
        for _ in range(interval - 1):
            mee.write_block(0)
            mee.write_block(4096)
        assert mee.nvm.persists(MetadataRegion.COUNTERS) == 0
        mee.write_block(0)
        assert mee.nvm.persists(MetadataRegion.COUNTERS) == 1

    def test_cheaper_than_leaf_at_runtime(self, config):
        osiris = engine_for(config)
        leaf = MemoryEncryptionEngine(config, make_protocol("leaf", config))
        osiris_cycles = sum(osiris.write_block(0) for _ in range(8))
        leaf_cycles = sum(leaf.write_block(0) for _ in range(8))
        assert osiris_cycles < leaf_cycles


class TestRecovery:
    def test_probing_restores_exact_counters(self, config):
        mee = engine_for(config, functional=True)
        # Updates that leave counters stale by < n bumps.
        for i in range(10):
            mee.write_block(i * 4096, data=bytes([i]) * 64)
        mee.write_block(0, data=b"\xaa" * 64)
        mee.write_block(0, data=b"\xbb" * 64)
        outcome = CrashInjector(mee).crash_and_recover()
        assert outcome.ok
        assert "probes" in outcome.detail
        assert mee.read_block_data(0) == b"\xbb" * 64

    def test_tampered_data_fails_probing(self, config):
        mee = engine_for(config, functional=True)
        mee.write_block(0, data=b"\x42" * 64)
        injector = CrashInjector(mee)
        injector.crash_only()
        mee.nvm.backend.corrupt(MetadataRegion.DATA, 0)
        with pytest.raises(CrashConsistencyError):
            injector.recover()

    def test_recovery_slower_than_leaf_in_model(self, config):
        model = RecoveryBandwidthModel(config.pcm)
        osiris = make_protocol("osiris", config)
        leaf = make_protocol("leaf", config)
        assert osiris.recovery_ms(model, 2 * TB) > leaf.recovery_ms(
            model, 2 * TB
        )

    def test_table4_scale_factor(self, config):
        # Paper Table 4: Osiris ~8.1x leaf (50,666 vs 6,222 ms at 2 TB).
        model = RecoveryBandwidthModel(config.pcm)
        osiris = make_protocol("osiris", config)
        leaf = make_protocol("leaf", config)
        ratio = osiris.recovery_ms(model, 2 * TB) / leaf.recovery_ms(
            model, 2 * TB
        )
        assert 7.0 < ratio < 9.5
