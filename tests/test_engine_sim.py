"""The trace-driven simulation loop and its results."""

import pytest

from dataclasses import replace

from repro.config import DataCacheConfig, default_config
from repro.sim.engine import simulate
from repro.sim.machine import build_machine
from repro.sim.results import SimulationResult, normalized_cycles
from repro.util.units import MB
from repro.workloads.synthetic import WorkloadProfile, generate_trace


@pytest.fixture
def config():
    # A small LLC so short unit traces actually generate memory
    # writebacks (the traffic the persistence protocols differ on).
    base = default_config(capacity_bytes=64 * MB)
    return replace(
        base,
        llc=DataCacheConfig(capacity_bytes=64 * 1024, associativity=16),
    )


@pytest.fixture
def trace():
    profile = WorkloadProfile(
        name="sim-unit",
        footprint_bytes=2 * MB,
        num_accesses=4000,
        write_fraction=0.4,
        think_cycles=5,
    )
    return generate_trace(profile, seed=11)


class TestSimulate:
    def test_returns_populated_result(self, config, trace):
        result = simulate(build_machine(config, "leaf"), trace, seed=1)
        assert isinstance(result, SimulationResult)
        assert result.workload == "sim-unit"
        assert result.protocol == "leaf"
        assert result.accesses == 4000
        assert result.cycles > 0
        assert 0.0 <= result.llc_hit_rate <= 1.0
        assert result.page_faults > 0

    def test_deterministic(self, config, trace):
        a = simulate(build_machine(config, "amnt", seed=5), trace, seed=5)
        b = simulate(build_machine(config, "amnt", seed=5), trace, seed=5)
        assert a.cycles == b.cycles
        assert a.nvm_stats == b.nvm_stats

    def test_think_cycles_floor(self, config, trace):
        result = simulate(build_machine(config, "volatile"), trace, seed=1)
        llc_latency = config.llc.access_latency_cycles
        assert result.cycles >= sum(
            access.think_cycles + llc_latency for access in trace
        )

    def test_flush_at_end_adds_writes(self, config, trace):
        plain = simulate(build_machine(config, "strict"), trace, seed=1)
        flushed = simulate(
            build_machine(config, "strict"),
            trace,
            seed=1,
            flush_llc_at_end=True,
        )
        assert (
            flushed.mee_stats["mee.data_writes"]
            > plain.mee_stats["mee.data_writes"]
        )

    def test_churn_exercises_reclamation(self, config, trace):
        machine = build_machine(config, "amnt++")
        simulate(machine, trace, seed=1, churn_interval=500)
        assert machine.mm.stats.get("churn_bursts") > 0

    def test_churn_disabled_with_zero_interval(self, config, trace):
        machine = build_machine(config, "leaf")
        simulate(machine, trace, seed=1, churn_interval=0)
        assert machine.mm.stats.get("churn_bursts") == 0

    def test_os_instructions_accounted(self, config, trace):
        result = simulate(build_machine(config, "leaf"), trace, seed=1)
        assert result.os_instructions > 0
        assert result.instructions > result.os_instructions


class TestResultDerivations:
    def test_subtree_hit_rate_none_without_amnt(self, config, trace):
        result = simulate(build_machine(config, "leaf"), trace, seed=1)
        assert result.subtree_hit_rate() is None

    def test_subtree_hit_rate_present_for_amnt(self, config, trace):
        result = simulate(build_machine(config, "amnt"), trace, seed=1)
        rate = result.subtree_hit_rate()
        assert rate is not None
        assert 0.0 <= rate <= 1.0

    def test_movement_rate(self, config, trace):
        result = simulate(build_machine(config, "amnt"), trace, seed=1)
        assert result.movement_rate() is not None
        assert result.movement_rate() < 0.05  # movements are rare

    def test_persist_traffic_zero_for_volatile(self, config, trace):
        result = simulate(build_machine(config, "volatile"), trace, seed=1)
        assert result.persist_traffic() == 0

    def test_cycles_per_access(self, config, trace):
        result = simulate(build_machine(config, "volatile"), trace, seed=1)
        assert result.cycles_per_access() == result.cycles / result.accesses


class TestNormalization:
    def test_normalized_cycles(self, config, trace):
        results = {
            name: simulate(build_machine(config, name), trace, seed=1)
            for name in ("volatile", "leaf", "strict")
        }
        normalized = normalized_cycles(results)
        assert normalized["volatile"] == 1.0
        assert 1.0 <= normalized["leaf"] < normalized["strict"]

    def test_missing_baseline_raises(self, config, trace):
        results = {"leaf": simulate(build_machine(config, "leaf"), trace, seed=1)}
        with pytest.raises(KeyError):
            normalized_cycles(results)
