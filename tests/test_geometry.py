"""BMT geometry: the shape arithmetic everything else trusts."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import default_config
from repro.errors import ConfigError
from repro.integrity.geometry import TreeGeometry
from repro.util.units import GB, MB


@pytest.fixture
def paper_tree():
    """8 GB, 8-ary: 2M counter blocks, 7 integrity levels + leaves."""
    return TreeGeometry.from_config(default_config())


class TestPaperGeometry:
    def test_counter_blocks(self, paper_tree):
        assert paper_tree.num_counter_blocks == 8 * GB // 4096

    def test_eight_level_bmt(self, paper_tree):
        # 7 integrity-node levels + the counter level == the paper's
        # 8-level BMT (consistent with SGX).
        assert paper_tree.num_node_levels == 7
        assert paper_tree.num_levels == 8
        assert paper_tree.counter_level == 8

    def test_level_sizes_are_powers_of_arity(self, paper_tree):
        assert paper_tree.nodes_at_level(1) == 1
        assert paper_tree.nodes_at_level(2) == 8
        assert paper_tree.nodes_at_level(3) == 64
        assert paper_tree.nodes_at_level(7) == 8**6

    def test_level3_region_is_128mb(self, paper_tree):
        # Section 5: "at level 3 the coverage is 128MB for an 8GB memory".
        assert paper_tree.region_bytes(3) == 128 * MB

    def test_level3_has_64_subtree_regions(self, paper_tree):
        # Section 4.2: "a subtree at level 3 (64 possible subtree regions)".
        assert paper_tree.nodes_at_level(3) == 64

    def test_root_covers_everything(self, paper_tree):
        assert (
            paper_tree.counters_covered_by(1) == paper_tree.num_counter_blocks
        )

    def test_total_nodes(self, paper_tree):
        expected = sum(8**i for i in range(7))
        assert paper_tree.total_nodes() == expected


class TestParentChild:
    def test_parent_of_counter(self, paper_tree):
        assert paper_tree.parent((8, 9)) == (7, 1)

    def test_parent_of_node(self, paper_tree):
        assert paper_tree.parent((3, 63)) == (2, 7)

    def test_root_has_no_parent(self, paper_tree):
        with pytest.raises(ConfigError):
            paper_tree.parent((1, 0))

    def test_children_of_root(self, paper_tree):
        assert list(paper_tree.children((1, 0))) == [(2, i) for i in range(8)]

    def test_children_of_deepest_level_are_counters(self, paper_tree):
        children = list(paper_tree.children((7, 0)))
        assert children == [(8, i) for i in range(8)]

    def test_parent_child_roundtrip(self, paper_tree):
        node = (4, 123)
        for child in paper_tree.children(node):
            assert paper_tree.parent(child) == node

    def test_out_of_range_rejected(self, paper_tree):
        with pytest.raises(ConfigError):
            paper_tree.parent((3, 64))
        with pytest.raises(ConfigError):
            paper_tree.nodes_at_level(0)


class TestAncestry:
    def test_path_runs_leafward_to_root(self, paper_tree):
        path = paper_tree.ancestors_of_counter(0)
        assert path[0] == (7, 0)
        assert path[-1] == (1, 0)
        assert len(path) == 7

    def test_path_levels_strictly_decrease(self, paper_tree):
        path = paper_tree.ancestors_of_counter(12345)
        levels = [node[0] for node in path]
        assert levels == sorted(levels, reverse=True)

    def test_ancestor_at_level(self, paper_tree):
        covered = paper_tree.counters_covered_by(3)
        assert paper_tree.ancestor_at_level(covered - 1, 3) == 0
        assert paper_tree.ancestor_at_level(covered, 3) == 1

    def test_counter_range_roundtrip(self, paper_tree):
        first, last = paper_tree.counter_range_of((3, 5))
        assert paper_tree.ancestor_at_level(first, 3) == 5
        assert paper_tree.ancestor_at_level(last - 1, 3) == 5
        assert paper_tree.is_ancestor((3, 5), first)
        assert not paper_tree.is_ancestor((3, 5), last)


class TestIrregularShapes:
    def test_tiny_tree(self):
        tree = TreeGeometry(num_counter_blocks=1)
        assert tree.num_node_levels == 1
        assert tree.nodes_at_level(1) == 1

    def test_non_power_counter_count(self):
        tree = TreeGeometry(num_counter_blocks=100, arity=8)
        # 100 -> 13 -> 2 -> 1
        assert tree.num_node_levels == 3
        assert tree.nodes_at_level(3) == 13
        assert tree.nodes_at_level(2) == 2

    def test_rejects_empty_tree(self):
        with pytest.raises(ConfigError):
            TreeGeometry(num_counter_blocks=0)

    def test_rejects_unary(self):
        with pytest.raises(ConfigError):
            TreeGeometry(num_counter_blocks=8, arity=1)


@given(
    counter=st.integers(min_value=0, max_value=2**21 - 1),
    level=st.integers(min_value=1, max_value=7),
)
def test_ancestor_consistency_property(counter, level):
    """ancestor_at_level agrees with the ancestors_of_counter walk."""
    tree = TreeGeometry.from_config(default_config())
    path = tree.ancestors_of_counter(counter)
    walked = {node_level: index for node_level, index in path}
    assert walked[level] == tree.ancestor_at_level(counter, level)


@given(counter=st.integers(min_value=0, max_value=2**21 - 1))
def test_every_counter_under_its_level3_region(counter):
    tree = TreeGeometry.from_config(default_config())
    region = tree.ancestor_at_level(counter, 3)
    assert tree.is_ancestor((3, region), counter)
