"""Crypto engines: determinism, distinctness, encryption roundtrips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.engine import FastCryptoEngine, RealCryptoEngine
from repro.crypto.hmac import data_mac
from repro.crypto.pad import apply_pad, make_pad


@pytest.fixture(params=["real", "fast"])
def engine(request):
    return RealCryptoEngine() if request.param == "real" else FastCryptoEngine()


class TestDeterminism:
    def test_mac_is_deterministic(self, engine):
        assert engine.mac(b"data") == engine.mac(b"data")

    def test_hash8_is_deterministic(self, engine):
        assert engine.hash8(b"node") == engine.hash8(b"node")

    def test_pad_is_deterministic(self, engine):
        assert engine.pad(64, 1, 2) == engine.pad(64, 1, 2)


class TestWidths:
    def test_mac_width(self, engine):
        assert len(engine.mac(b"x")) == 8

    def test_hash8_width(self, engine):
        assert len(engine.hash8(b"x" * 64)) == 8

    def test_pad_width_is_block(self, engine):
        assert len(engine.pad(0, 0, 0)) == 64


class TestDistinctness:
    def test_pad_varies_with_address(self, engine):
        assert engine.pad(0, 1, 1) != engine.pad(64, 1, 1)

    def test_pad_varies_with_major(self, engine):
        assert engine.pad(0, 1, 1) != engine.pad(0, 2, 1)

    def test_pad_varies_with_minor(self, engine):
        assert engine.pad(0, 1, 1) != engine.pad(0, 1, 2)

    def test_mac_varies_with_content(self, engine):
        assert engine.mac(b"a") != engine.mac(b"b")

    def test_real_mac_is_length_delimited(self):
        # ("ab","c") must not collide with ("a","bc").
        engine = RealCryptoEngine()
        assert engine.mac(b"ab", b"c") != engine.mac(b"a", b"bc")

    def test_keys_separate_engines(self):
        one = RealCryptoEngine(key=b"k1")
        two = RealCryptoEngine(key=b"k2")
        assert one.hash8(b"x") != two.hash8(b"x")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            RealCryptoEngine(key=b"")


class TestEncryption:
    @given(data=st.binary(min_size=64, max_size=64))
    def test_roundtrip_real(self, data):
        engine = RealCryptoEngine()
        ciphertext = engine.encrypt(data, 128, 3, 4)
        assert ciphertext != data or data == engine.pad(128, 3, 4)
        assert engine.decrypt(ciphertext, 128, 3, 4) == data

    def test_wrong_counter_garbles(self):
        engine = RealCryptoEngine()
        ciphertext = engine.encrypt(b"\x00" * 64, 0, 1, 1)
        assert engine.decrypt(ciphertext, 0, 1, 2) != b"\x00" * 64

    def test_xor_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            apply_pad(b"ab", b"a")


class TestHelpers:
    def test_make_pad_matches_engine(self):
        engine = RealCryptoEngine()
        assert make_pad(engine, 1, 2, 3) == engine.pad(1, 2, 3)

    def test_data_mac_binds_address(self):
        engine = RealCryptoEngine()
        mac_a = data_mac(engine, b"c" * 64, 0, 1, 1)
        mac_b = data_mac(engine, b"c" * 64, 64, 1, 1)
        assert mac_a != mac_b  # splicing defense

    def test_data_mac_binds_counter(self):
        engine = RealCryptoEngine()
        mac_a = data_mac(engine, b"c" * 64, 0, 1, 1)
        mac_b = data_mac(engine, b"c" * 64, 0, 1, 2)
        assert mac_a != mac_b  # replay defense
