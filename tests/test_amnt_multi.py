"""Multi-subtree AMNT (the paper's rejected per-core alternative)."""

import pytest

from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import CrashInjector
from repro.mem.backend import MetadataRegion
from repro.util.units import GB, MB


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


def engine_for(config, functional=False):
    return MemoryEncryptionEngine(
        config, make_protocol("amnt-multi", config), functional=functional
    )


def region_page(mee, region):
    """First page index inside a given level-3 region."""
    return region * mee.geometry.counters_covered_by(3)


def settle(mee, regions):
    """Spread one selection interval's writes across ``regions``."""
    interval = mee.config.amnt.movement_interval_writes
    for i in range(interval):
        region = regions[i % len(regions)]
        mee.write_block(region_page(mee, region) * 4096)


class TestFastSet:
    def test_adopts_multiple_regions(self, config):
        mee = engine_for(config)
        settle(mee, [0, 1, 2])
        assert set(mee.protocol.active_regions) == {0, 1, 2}

    def test_fast_set_bounded_by_configured_subtrees(self, config):
        mee = engine_for(config)
        settle(mee, [0, 1, 2, 3, 5, 7])  # more regions than slots
        assert len(mee.protocol.active_regions) <= config.amnt.multi_subtrees

    def test_each_active_region_gets_leaf_persistence(self, config):
        mee = engine_for(config)
        settle(mee, [0, 1])
        tree_persists = mee.nvm.persists(MetadataRegion.TREE)
        mee.write_block(region_page(mee, 0) * 4096)
        mee.write_block(region_page(mee, 1) * 4096)
        assert mee.nvm.persists(MetadataRegion.TREE) == tree_persists

    def test_inactive_region_stays_strict(self, config):
        mee = engine_for(config)
        settle(mee, [0, 1])
        tree_persists = mee.nvm.persists(MetadataRegion.TREE)
        mee.write_block(region_page(mee, 7) * 4096)
        assert mee.nvm.persists(MetadataRegion.TREE) > tree_persists

    def test_one_nv_register_per_subtree(self, config):
        mee = engine_for(config)
        names = mee.registers.names()
        assert "amnt_subtree_root" in names
        for slot in range(1, config.amnt.multi_subtrees):
            assert f"amnt_subtree_root_{slot}" in names

    def test_handles_multiprogram_style_split_without_os_help(self, config):
        """The design's selling point: two hot regions both go fast."""
        mee = engine_for(config)
        settle(mee, [0, 3])
        settle(mee, [0, 3])
        hits = mee.protocol.stats.get("subtree_hits")
        misses = mee.protocol.stats.get("subtree_misses")
        assert hits / (hits + misses) > 0.45


class TestRecoveryScaling:
    def test_stale_bytes_scale_with_subtree_count(self):
        config = default_config()  # 8 GB, 64 regions at level 3
        single = make_protocol("amnt", config)
        multi = make_protocol("amnt-multi", config)
        assert multi.stale_data_bytes(8 * GB) == pytest.approx(
            config.amnt.multi_subtrees * single.stale_data_bytes(8 * GB)
        )

    def test_functional_recovery_covers_all_regions(self, config):
        mee = engine_for(config, functional=True)
        payload_a = b"\x0a" * 64
        payload_b = b"\x0b" * 64
        interval = config.amnt.movement_interval_writes
        for i in range(2 * interval):
            if i % 2:
                mee.write_block(region_page(mee, 0) * 4096, data=payload_a)
            else:
                mee.write_block(region_page(mee, 2) * 4096, data=payload_b)
        assert len(mee.protocol.active_regions) >= 2
        outcome = CrashInjector(mee).crash_and_recover()
        assert outcome.ok, outcome.detail
        assert mee.read_block_data(region_page(mee, 0) * 4096) == payload_a
        assert mee.read_block_data(region_page(mee, 2) * 4096) == payload_b


class TestHardwareCostObjection:
    def test_nv_area_scales_with_subtrees(self, config):
        """The paper's reason for rejecting this design, quantified."""
        mee = engine_for(config)
        area = mee.protocol.area_overhead()
        assert area.nonvolatile_on_chip_bytes == 64 * config.amnt.multi_subtrees
        single = MemoryEncryptionEngine(config, make_protocol("amnt", config))
        assert (
            area.nonvolatile_on_chip_bytes
            > single.protocol.area_overhead().nonvolatile_on_chip_bytes
        )
