"""The data-side LLC model: fills, dirty writebacks, flushes."""

import pytest

from repro.cache.hierarchy import DataCache
from repro.config import DataCacheConfig
from repro.mem.address import AddressSpace
from repro.util.units import KB, MB


@pytest.fixture
def llc():
    space = AddressSpace(capacity_bytes=64 * MB)
    # 4 kB, 2-way: tiny, so eviction tests are direct.
    return DataCache(
        DataCacheConfig(capacity_bytes=4 * KB, associativity=2), space
    )


class TestAccess:
    def test_first_touch_fills(self, llc):
        traffic = llc.access(0, is_write=False)
        assert not traffic.hit
        assert traffic.fill_block == 0
        assert traffic.writeback_blocks == ()

    def test_second_touch_hits(self, llc):
        llc.access(0, is_write=False)
        traffic = llc.access(0, is_write=False)
        assert traffic.hit
        assert traffic.fill_block is None

    def test_write_hit_marks_dirty_then_writeback_on_eviction(self, llc):
        llc.access(0, is_write=True)
        # Fill the set (set width 32 sets? identity mapping on block
        # index: conflicting blocks are 32 sets apart) until eviction.
        sets = llc._cache.num_sets
        llc.access(sets * 64, is_write=False)
        traffic = llc.access(2 * sets * 64, is_write=False)
        assert traffic.writeback_blocks == (0,)

    def test_clean_eviction_produces_no_writeback(self, llc):
        sets = llc._cache.num_sets
        llc.access(0, is_write=False)
        llc.access(sets * 64, is_write=False)
        traffic = llc.access(2 * sets * 64, is_write=False)
        assert traffic.writeback_blocks == ()

    def test_same_block_different_bytes_share_line(self, llc):
        llc.access(0, is_write=False)
        assert llc.access(63, is_write=False).hit
        assert not llc.access(64, is_write=False).hit


class TestFlush:
    def test_flush_returns_only_dirty_blocks(self, llc):
        llc.access(0, is_write=True)
        llc.access(64, is_write=False)
        assert llc.flush() == [0]
        assert llc.occupancy() == 0

    def test_flush_block_clwb_semantics(self, llc):
        llc.access(0, is_write=True)
        assert llc.flush_block(0) == 0  # dirty -> memory write
        assert llc.flush_block(0) is None  # now clean

    def test_flush_block_absent_line(self, llc):
        assert llc.flush_block(4096) is None


class TestStats:
    def test_hit_rate_tracks(self, llc):
        llc.access(0, is_write=False)
        llc.access(0, is_write=False)
        assert llc.hit_rate() == pytest.approx(0.5)
