"""Lazy BMT mode: materialized state must be bit-identical to eager.

The lazy discipline defers digest computation along dirtied paths; its
entire contract is that *materialization is unobservable* — after
``materialize_all`` (or any on-demand materialization), every register,
overlay digest, persisted byte, and simulation statistic matches what
an eager tree produced from the same operation sequence. These tests
check that contract at three levels: the bare tree (property-based),
the full machine across every registered protocol, and the fault
campaign's crash/recover oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_config, validate_integrity_mode
from repro.core.protocol import protocol_names
from repro.crypto.engine import RealCryptoEngine
from repro.errors import ConfigError, FaultInjectionError
from repro.faults.campaign import (
    FaultCampaignSpec,
    default_fault_config,
    run_campaign,
    run_fault_cell,
)
from repro.integrity.bmt import BonsaiMerkleTree
from repro.integrity.geometry import TreeGeometry
from repro.mem.backend import MetadataRegion, SparseMemory
from repro.sim.parallel import SweepCell, run_cell
from repro.util.units import MB
from repro.workloads.registry import profile_spec
from repro.workloads.trace import MemoryAccess, Trace


def small_tree(mode):
    geometry = TreeGeometry.from_config(default_config(capacity_bytes=4 * MB))
    return BonsaiMerkleTree(
        geometry, RealCryptoEngine(), SparseMemory(), mode=mode
    )


def bumped(tree, index):
    block = tree.current_counter(index).copy()
    block.bump(index % len(block.minors))
    return block


def apply_ops(tree, ops):
    for index, persist in ops:
        index %= tree.geometry.num_counter_blocks
        tree.set_counter(index, bumped(tree, index), persist=False)
        if persist:
            tree.persist_path(index)


def assert_trees_identical(lazy, eager):
    lazy.materialize_all()
    assert lazy.root_register == eager.root_register
    assert lazy._volatile_nodes == eager._volatile_nodes
    assert sorted(lazy.dirty_nodes()) == sorted(eager.dirty_nodes())
    assert sorted(lazy.dirty_counters()) == sorted(eager.dirty_counters())
    tree_region = MetadataRegion.TREE
    lazy_persisted = dict(
        (key, lazy.backend.read(tree_region, key))
        for key in lazy.backend.keys(tree_region)
    )
    eager_persisted = dict(
        (key, eager.backend.read(tree_region, key))
        for key in eager.backend.keys(tree_region)
    )
    assert lazy_persisted == eager_persisted


class TestModeValidation:
    def test_known_modes_accepted(self):
        validate_integrity_mode("eager")
        validate_integrity_mode("lazy")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            validate_integrity_mode("deferred")

    def test_tree_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            small_tree("sometimes")


class TestTreeEquivalence:
    """Property: lazy-then-materialize == eager, op-for-op."""

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(min_value=0, max_value=4095), st.booleans()),
            max_size=40,
        )
    )
    def test_materialized_state_matches_eager(self, ops):
        lazy, eager = small_tree("lazy"), small_tree("eager")
        apply_ops(lazy, ops)
        apply_ops(eager, ops)
        assert_trees_identical(lazy, eager)

    def test_on_demand_materialization_path(self):
        # Reading a node's bytes must materialize just enough: the
        # returned digest equals the eager tree's without a full
        # materialize_all having run.
        lazy, eager = small_tree("lazy"), small_tree("eager")
        apply_ops(lazy, [(7, False), (9, False)])
        apply_ops(eager, [(7, False), (9, False)])
        path = lazy.geometry.ancestors_of_counter(7)
        for node in path:
            assert lazy.current_node_bytes(node) == eager.current_node_bytes(
                node
            )

    def test_verify_counter_forces_consistency(self):
        lazy = small_tree("lazy")
        apply_ops(lazy, [(3, True), (3, False)])
        assert lazy.verify_counter(3).ok

    def test_crash_then_recover_matches_eager(self):
        # Fully persisted updates: recovery succeeds identically.
        lazy, eager = small_tree("lazy"), small_tree("eager")
        ops = [(1, True), (5, True), (1, True)]
        apply_ops(lazy, ops)
        apply_ops(eager, ops)
        lazy.crash()
        eager.crash()
        assert lazy.rebuild_all_from_persisted() == eager.rebuild_all_from_persisted()
        assert lazy.root_register == eager.root_register

    def test_crash_with_lost_updates_fails_identically(self):
        # Unpersisted dirt lost in the crash: both modes must refuse
        # the rebuild the same way (root register holds the newer root).
        from repro.errors import CrashConsistencyError

        lazy, eager = small_tree("lazy"), small_tree("eager")
        ops = [(1, True), (2, False), (1, False)]
        apply_ops(lazy, ops)
        apply_ops(eager, ops)
        lazy.crash()
        eager.crash()
        with pytest.raises(CrashConsistencyError):
            eager.rebuild_all_from_persisted()
        with pytest.raises(CrashConsistencyError):
            lazy.rebuild_all_from_persisted()
        assert lazy.root_register == eager.root_register


@pytest.mark.parametrize("protocol", protocol_names())
class TestProtocolEquivalence:
    """Every protocol, functional run: lazy == eager bit-for-bit."""

    def _cell(self, protocol, mode):
        return SweepCell(
            protocol=protocol,
            trace=profile_spec("parsec", "blackscholes", 800, 7),
            seed=7,
            functional=True,
            integrity_mode=mode,
        )

    def test_simulation_results_identical(self, protocol):
        config = default_fault_config()
        eager = run_cell(self._cell(protocol, "eager"), config)
        lazy = run_cell(self._cell(protocol, "lazy"), config)
        assert eager == lazy


class TestCampaignForcesEager:
    def test_cell_runner_builds_eager_machines(self):
        spec = FaultCampaignSpec(
            protocol="leaf",
            trace=profile_spec("faults", "hotshift", 400, 7),
            trigger=None,
            seed=7,
        )
        outcome = run_fault_cell(spec, default_fault_config())
        assert outcome.verdict in ("baseline", "recovered")

    def test_lazy_machine_rejected_by_guard(self, monkeypatch):
        import repro.faults.campaign as campaign_module

        real_build = campaign_module.build_machine

        def lazy_build(config, protocol, **kwargs):
            kwargs["integrity_mode"] = "lazy"
            return real_build(config, protocol, **kwargs)

        monkeypatch.setattr(campaign_module, "build_machine", lazy_build)
        spec = FaultCampaignSpec(
            protocol="leaf",
            trace=profile_spec("faults", "hotshift", 400, 7),
            trigger=None,
            seed=7,
        )
        with pytest.raises(FaultInjectionError):
            run_fault_cell(spec, default_fault_config())


class TestLazyMiniCampaign:
    """Crash/recover sweep stays silent-divergence-free.

    The campaign itself forces eager machines; this is the acceptance
    check that the lazy refactor did not disturb the crash machinery
    it shares code with (persist paths, overlay drop, recovery).
    """

    def test_mini_campaign_no_silent_divergence(self):
        report = run_campaign(
            ["leaf", "amnt"],
            [profile_spec("faults", "hotshift", 600, 7)],
            crash_every=200,
            phase_samples=1,
            tamper_crashes=1,
            seed=7,
        )
        summary = report.summary()
        assert summary["silent_divergence"] == 0
        assert not report.anomalies()
        assert summary["cells"] > 0
