"""Plain-text table rendering for the benchmark harness."""

from repro.bench.reporting import (
    derive_hit_ratios,
    format_metrics,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_empty(self):
        assert "(empty)" in format_table([])

    def test_title_and_alignment(self):
        rows = [
            {"protocol": "amnt", "norm": 1.1604},
            {"protocol": "strict", "norm": 2.39},
        ]
        text = format_table(rows, title="Figure 4")
        lines = text.splitlines()
        assert lines[0] == "Figure 4"
        assert "protocol" in lines[1]
        assert "1.160" in text
        assert "2.390" in text

    def test_column_subset_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_cells_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 9}]
        text = format_table(rows)
        assert text  # renders without KeyError

    def test_precision(self):
        text = format_table([{"x": 1.23456}], precision=1)
        assert "1.2" in text and "1.23" not in text


class TestDerivedHitRatios:
    def test_pairs_become_ratio_rows(self):
        counters = {
            "trace_cache.hits": 3,
            "trace_cache.misses": 1,
            "plan_cache.hits": 0,
            "plan_cache.misses": 2,
            "stream_cache.hits": 5,  # no .misses twin -> no ratio
            "events.total": 9,
        }
        ratios = derive_hit_ratios(counters)
        assert ratios == {
            "trace_cache.hit_ratio": 0.75,
            "plan_cache.hit_ratio": 0.0,
        }

    def test_idle_pairs_are_omitted(self):
        assert derive_hit_ratios({"c.hits": 0, "c.misses": 0}) == {}

    def test_format_metrics_renders_ratio_table(self):
        document = {
            "metrics": {
                "counters": {
                    "plan_cache.hits": 9,
                    "plan_cache.misses": 3,
                }
            }
        }
        text = format_metrics(document, source="run")
        assert "derived hit ratios" in text
        assert "plan_cache.hit_ratio" in text
        assert "0.750" in text

    def test_format_metrics_without_pairs_has_no_ratio_table(self):
        document = {"metrics": {"counters": {"events.total": 4}}}
        assert "derived hit ratios" not in format_metrics(document)


class TestFormatSeries:
    def test_series_grid(self):
        series = {
            "canneal": {"leaf": 1.0, "anubis": 2.4},
            "lbm": {"leaf": 1.1, "anubis": 1.3},
        }
        text = format_series(series, title="Fig")
        assert "canneal" in text
        assert "workload" in text
        assert "2.400" in text
