"""The functional Bonsai Merkle Tree: genesis, updates, crash, verify."""

import pytest

from repro.config import default_config
from repro.crypto.counters import CounterBlock
from repro.crypto.engine import RealCryptoEngine
from repro.errors import CrashConsistencyError, IntegrityError
from repro.integrity.bmt import BonsaiMerkleTree
from repro.integrity.geometry import TreeGeometry
from repro.mem.backend import MetadataRegion, SparseMemory
from repro.util.units import MB


@pytest.fixture
def tree():
    """64 MB worth of counters: 16384 leaves, 5 integrity levels."""
    geometry = TreeGeometry.from_config(
        default_config(capacity_bytes=64 * MB)
    )
    return BonsaiMerkleTree(geometry, RealCryptoEngine(), SparseMemory())


def bumped(tree, index, offset=0):
    block = tree.current_counter(index).copy()
    block.bump(offset)
    return block


class TestGenesis:
    def test_fresh_tree_verifies_everywhere(self, tree):
        for index in (0, 1, 100, tree.geometry.num_counter_blocks - 1):
            assert tree.verify_counter(index).ok

    def test_fresh_tree_verifies_persisted_view(self, tree):
        assert tree.verify_counter(0, persisted_only=True).ok

    def test_root_register_initialized(self, tree):
        assert len(tree.root_register) == 8

    def test_genesis_nodes_identical_for_full_shape(self, tree):
        a = tree.persisted_node_bytes((3, 0))
        b = tree.persisted_node_bytes((3, 1))
        assert a == b


class TestUpdates:
    def test_set_counter_updates_root(self, tree):
        before = tree.root_register
        tree.set_counter(0, bumped(tree, 0))
        assert tree.root_register != before

    def test_update_keeps_current_view_verified(self, tree):
        tree.set_counter(5, bumped(tree, 5))
        assert tree.verify_counter(5).ok

    def test_unpersisted_update_breaks_persisted_view(self, tree):
        tree.set_counter(5, bumped(tree, 5))
        report = tree.verify_counter(5, persisted_only=True)
        assert not report.ok

    def test_persisted_update_with_lazy_nodes(self, tree):
        tree.set_counter(5, bumped(tree, 5), persist=True)
        # Counter persisted, nodes lazy: the persisted path still
        # mismatches (leaf persistence's crash window).
        report = tree.verify_counter(5, persisted_only=True)
        assert not report.ok
        assert tree.dirty_counters() == []
        assert len(tree.dirty_nodes()) == tree.geometry.num_node_levels

    def test_persist_path_clears_dirt(self, tree):
        tree.set_counter(5, bumped(tree, 5))
        written = tree.persist_path(5)
        assert written == tree.geometry.num_node_levels + 1
        assert tree.verify_counter(5, persisted_only=True).ok
        assert tree.dirty_nodes() == []

    def test_persist_path_idempotent(self, tree):
        tree.set_counter(5, bumped(tree, 5))
        tree.persist_path(5)
        assert tree.persist_path(5) == 0

    def test_sibling_counters_stay_valid(self, tree):
        tree.set_counter(8, bumped(tree, 8))
        assert tree.verify_counter(9).ok
        assert tree.verify_counter(0).ok


class TestCrash:
    def test_crash_drops_overlay(self, tree):
        tree.set_counter(3, bumped(tree, 3))
        lost_counters, lost_nodes = tree.crash()
        assert lost_counters == 1
        assert lost_nodes == tree.geometry.num_node_levels
        # Current view reverted to the (stale) persisted state.
        assert tree.current_counter(3).is_zero()

    def test_root_register_survives_crash(self, tree):
        tree.set_counter(3, bumped(tree, 3))
        register = tree.root_register
        tree.crash()
        assert tree.root_register == register

    def test_post_crash_verification_fails_without_recovery(self, tree):
        tree.set_counter(3, bumped(tree, 3), persist=True)
        tree.crash()
        assert not tree.verify_counter(3).ok


class TestRecovery:
    def test_rebuild_restores_consistency(self, tree):
        for index in (0, 7, 300):
            tree.set_counter(index, bumped(tree, index), persist=True)
        tree.crash()
        nodes = tree.rebuild_all_from_persisted()
        assert nodes > 0
        for index in (0, 7, 300, 50):
            assert tree.verify_counter(index).ok

    def test_rebuild_detects_lost_counters(self, tree):
        tree.set_counter(3, bumped(tree, 3), persist=False)  # volatile!
        tree.crash()
        with pytest.raises(CrashConsistencyError):
            tree.rebuild_all_from_persisted()

    def test_subtree_rebuild_returns_value_and_count(self, tree):
        tree.set_counter(0, bumped(tree, 0), persist=True)
        tree.crash()
        subtree = (2, 0)
        value, count = tree.subtree_value_from_persisted(subtree)
        assert len(value) == 64
        assert count > 0

    def test_recompute_and_persist_single_node(self, tree):
        tree.set_counter(0, bumped(tree, 0), persist=True)
        node = tree.geometry.ancestors_of_counter(0)[0]
        value = tree.recompute_and_persist(node)
        assert tree.persisted_node_bytes(node) == value


class TestTamperDetection:
    def test_corrupted_persisted_counter_detected(self, tree):
        tree.set_counter(3, bumped(tree, 3), persist=True)
        tree.persist_path(3)
        tree.crash()
        tree.backend.corrupt(MetadataRegion.COUNTERS, 3)
        assert not tree.verify_counter(3).ok

    def test_corrupted_tree_node_detected(self, tree):
        tree.set_counter(3, bumped(tree, 3), persist=True)
        tree.persist_path(3)
        tree.crash()
        node = tree.geometry.ancestors_of_counter(3)[1]
        tree.backend.corrupt(MetadataRegion.TREE, node)
        report = tree.verify_counter(3)
        assert not report.ok

    def test_tampered_rebuild_contradicts_register(self, tree):
        tree.set_counter(3, bumped(tree, 3), persist=True)
        tree.crash()
        # Attacker replays the genesis counter during downtime.
        tree.backend.write(
            MetadataRegion.COUNTERS, 3, CounterBlock().encode()
        )
        with pytest.raises(CrashConsistencyError):
            tree.rebuild_all_from_persisted()

    def test_authenticate_or_raise(self, tree):
        tree.set_counter(3, bumped(tree, 3), persist=True)
        tree.persist_path(3)
        tree.crash()
        tree.backend.corrupt(MetadataRegion.COUNTERS, 3)
        with pytest.raises(IntegrityError):
            tree.authenticate_or_raise(3)
