"""Content-addressed result store: fingerprints, CAS semantics,
incremental sweeps, journal composition, CLI surface."""

import json
import multiprocessing
import os
from dataclasses import replace
from pathlib import Path

import pytest

from repro import telemetry
from repro.cli import EXIT_INTEGRITY, EXIT_OK, main
from repro.config import INTEGRITY_MODES, default_config
from repro.core.protocol import protocol_names
from repro.sim.parallel import ParallelSweepRunner, SweepCell
from repro.sim.runner import run_protocol_sweep, sweep_normalized
from repro.store import (
    RESULT_EPOCH,
    STORE_SCHEMA,
    ResultStore,
    cell_fingerprint,
    fingerprint_payload,
    resolve_store_dir,
)
from repro.store.store import STORE_DIR_ENV
from repro.util.units import MB
from repro.workloads.registry import profile_spec

SPEC = profile_spec("parsec", "blackscholes", 300, 7)
PROTOCOLS = ("volatile", "leaf", "amnt")


def small_cells(protocols=PROTOCOLS, **changes):
    return [
        SweepCell(protocol=name, trace=SPEC, seed=7, **changes)
        for name in protocols
    ]


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


@pytest.fixture(autouse=True)
def _restore_telemetry_switch():
    """CLI runs below pass ``--no-telemetry``, which flips the global
    collection switch; leave it as found for later test modules."""
    prev = telemetry.enabled()
    yield
    telemetry.set_enabled(prev)


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------


class TestFingerprint:
    def test_deterministic(self, small_config):
        cell = small_cells()[0]
        assert cell_fingerprint(cell, small_config) == cell_fingerprint(
            cell, small_config
        )

    def test_payload_contents(self, small_config):
        cell = small_cells()[0]
        payload = fingerprint_payload(cell, small_config)
        assert payload["schema"] == STORE_SCHEMA
        assert payload["epoch"] == RESULT_EPOCH
        assert payload["protocol"] == "volatile"
        assert payload["seed"] == 7
        assert payload["config"] is small_config

    @pytest.mark.parametrize(
        "changes",
        [
            {"seed": 8},
            {"protocol": "leaf"},
            {"churn_interval": 999},
            {"scatter_span_chunks": 4},
            {"functional": True},
            {"integrity_mode": "lazy"},
            {"trace": profile_spec("parsec", "blackscholes", 301, 7)},
        ],
    )
    def test_every_semantic_knob_changes_the_fingerprint(
        self, small_config, changes
    ):
        """Negative aliasing tests: any fingerprint-relevant change must
        miss — a stale result must never be served for a changed knob."""
        cell = small_cells()[0]
        assert cell_fingerprint(cell, small_config) != cell_fingerprint(
            replace(cell, **changes), small_config
        )

    def test_geometry_changes_the_fingerprint(self):
        cell = small_cells()[0]
        base = default_config(capacity_bytes=64 * MB)
        assert cell_fingerprint(cell, base) != cell_fingerprint(
            cell, default_config(capacity_bytes=128 * MB)
        )
        assert cell_fingerprint(cell, base) != cell_fingerprint(
            cell, default_config(capacity_bytes=64 * MB, subtree_level=2)
        )

    def test_persist_model_changes_the_fingerprint(self):
        cell = small_cells()[0]
        base = default_config(capacity_bytes=64 * MB)
        wpq = replace(base, persist_model="wpq")
        assert cell_fingerprint(cell, base) != cell_fingerprint(cell, wpq)

    def test_cell_config_override_wins(self, small_config):
        cell = small_cells()[0]
        other = default_config(capacity_bytes=128 * MB)
        pinned = replace(cell, config=other)
        # The runner-level config is irrelevant once the cell pins one.
        assert cell_fingerprint(pinned, small_config) == cell_fingerprint(
            pinned, other
        )

    def test_execution_strategy_is_excluded(self, small_config):
        """replay/plan are bit-identical engine paths (property-tested
        elsewhere) and MUST NOT fragment the store."""
        cell = small_cells()[0]
        fp = cell_fingerprint(cell, small_config)
        for flags in (
            {"replay": True, "plan": False},
            {"replay": True, "plan": True},
            {"replay": False, "plan": False},
        ):
            assert cell_fingerprint(replace(cell, **flags), small_config) == fp


# ----------------------------------------------------------------------
# CAS semantics
# ----------------------------------------------------------------------


def _one_result(config, cell=None):
    cell = cell or small_cells()[0]
    return ParallelSweepRunner(workers=1).run([cell], config)[0]


class TestResultStore:
    def test_round_trip_bit_identical(self, store, small_config):
        cell = small_cells()[0]
        fp = cell_fingerprint(cell, small_config)
        result = _one_result(small_config, cell)
        assert not store.contains(fp)
        store.put(fp, result, meta={"protocol": cell.protocol})
        assert store.contains(fp)
        fetched = store.get(fp)
        assert fetched.to_json() == ResultStore.normalize(result).to_json()
        assert store.session == {
            "hits": 1, "misses": 0, "puts": 1, "corrupt": 0,
        }

    def test_missing_object_is_a_miss(self, store):
        assert store.get("ab" * 32) is None
        assert store.session["misses"] == 1

    def test_corrupt_object_is_never_served(self, store, small_config):
        cell = small_cells()[0]
        fp = cell_fingerprint(cell, small_config)
        store.put(fp, _one_result(small_config, cell))
        path = store.object_path(fp)
        # Torn write: a truncated JSON prefix.
        path.write_text(path.read_text()[:50])
        assert store.get(fp) is None
        assert store.session["corrupt"] == 1
        report = store.verify()
        assert report["checked"] == 1 and len(report["corrupt"]) == 1
        assert "torn" in report["corrupt"][0]["problem"]

    def test_bitflip_fails_digest_check(self, store, small_config):
        cell = small_cells()[0]
        fp = cell_fingerprint(cell, small_config)
        store.put(fp, _one_result(small_config, cell))
        path = store.object_path(fp)
        document = json.loads(path.read_text())
        document["payload"]["cycles"] += 1
        path.write_text(json.dumps(document))
        assert store.get(fp) is None
        assert any(
            "digest mismatch" in item["problem"]
            for item in store.verify()["corrupt"]
        )

    def test_misaddressed_object_is_rejected(self, store, small_config):
        """An object copied to the wrong address must not be served."""
        cell = small_cells()[0]
        fp = cell_fingerprint(cell, small_config)
        store.put(fp, _one_result(small_config, cell))
        wrong = ("0" if fp[0] != "0" else "1") + fp[1:]
        target = store.object_path(wrong)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(store.object_path(fp).read_text())
        assert store.get(wrong) is None

    def test_recompute_heals_corruption(self, store, small_config):
        cell = small_cells()[0]
        fp = cell_fingerprint(cell, small_config)
        result = _one_result(small_config, cell)
        store.put(fp, result)
        store.object_path(fp).write_text("garbage")
        assert store.get(fp) is None
        store.put(fp, result)  # what the incremental path does on a miss
        assert store.get(fp) is not None
        assert not store.verify()["corrupt"]

    def test_verify_clean_store(self, store, small_config):
        for cell in small_cells():
            store.put(
                cell_fingerprint(cell, small_config),
                _one_result(small_config, cell),
            )
        report = store.verify()
        assert report == {"checked": 3, "ok": 3, "corrupt": []}

    def test_stats_and_ls(self, store, small_config):
        cells = small_cells()
        for cell in cells:
            store.put(
                cell_fingerprint(cell, small_config),
                _one_result(small_config, cell),
                meta={"protocol": cell.protocol, "workload": "blackscholes"},
            )
        stats = store.stats()
        assert stats["objects"] == 3
        assert stats["index_entries"] == 3
        assert stats["bytes"] > 0
        rows = store.ls()
        assert {row["protocol"] for row in rows} == set(PROTOCOLS)
        assert len(store.ls(limit=2)) == 2

    def test_duplicate_puts_collapse_in_ls(self, store, small_config):
        cell = small_cells()[0]
        fp = cell_fingerprint(cell, small_config)
        result = _one_result(small_config, cell)
        store.put(fp, result, meta={"protocol": cell.protocol})
        store.put(fp, result, meta={"protocol": cell.protocol})
        assert store.stats()["index_entries"] == 2  # append-only log
        assert len(store.ls()) == 1  # one live object, last entry wins


class TestGc:
    def _populate(self, store, small_config):
        cells = small_cells()
        for cell in cells:
            store.put(
                cell_fingerprint(cell, small_config),
                _one_result(small_config, cell),
            )
        return [cell_fingerprint(cell, small_config) for cell in cells]

    def test_max_objects_keeps_newest(self, store, small_config):
        fps = self._populate(store, small_config)
        # Make the first object decisively the oldest.
        old = store.object_path(fps[0])
        os.utime(old, (1, 1))
        report = store.gc(max_objects=2)
        assert report["removed"] == 1 and report["kept"] == 2
        assert not store.contains(fps[0])
        assert store.contains(fps[1]) and store.contains(fps[2])

    def test_max_age_uses_horizon(self, store, small_config):
        fps = self._populate(store, small_config)
        os.utime(store.object_path(fps[0]), (1, 1))
        mtime = store.object_path(fps[1]).stat().st_mtime
        report = store.gc(max_age_seconds=3600, now=mtime + 10)
        assert report["removed"] == 1
        assert not store.contains(fps[0])

    def test_index_keeps_live_entries_only(self, store, small_config):
        fps = self._populate(store, small_config)
        os.utime(store.object_path(fps[0]), (1, 1))
        store.gc(max_objects=2)
        kept = {entry["fingerprint"] for entry in store.ls()}
        assert kept == set(fps[1:])
        # Every index entry points at a live object.
        assert store.stats()["index_entries"] == 2

    def test_noop_gc_compacts_only(self, store, small_config):
        fps = self._populate(store, small_config)
        report = store.gc()
        assert report["removed"] == 0
        assert all(store.contains(fp) for fp in fps)


# -- concurrent writers (top-level target: picklable for spawn) ---------


def _writer_task(args):
    directory, protocols, config = args
    store = ResultStore(directory)
    for cell in small_cells(protocols):
        fp = cell_fingerprint(cell, config)
        store.put(fp, _one_result(config, cell))
    return store.session["puts"]


class TestConcurrentWriters:
    def test_two_processes_converge(self, tmp_path, small_config):
        """Two writers racing on overlapping grids: every object lands
        intact (identical content makes last-writer-wins a no-op)."""
        directory = tmp_path / "shared-store"
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=2) as pool:
            puts = pool.map(
                _writer_task,
                [
                    (str(directory), PROTOCOLS, small_config),
                    (str(directory), PROTOCOLS, small_config),
                ],
            )
        assert puts == [3, 3]
        store = ResultStore(directory)
        assert store.stats()["objects"] == 3
        assert not store.verify()["corrupt"]
        for cell in small_cells():
            assert store.get(cell_fingerprint(cell, small_config)) is not None


# ----------------------------------------------------------------------
# incremental sweeps
# ----------------------------------------------------------------------


class TestIncrementalRunner:
    def test_warm_equals_cold_equals_storeless(self, store, small_config):
        cells = small_cells()
        runner = ParallelSweepRunner(workers=1)
        cold = runner.run(cells, small_config, store=store)
        assert store.session["misses"] == 3 and store.session["puts"] == 3
        warm = runner.run(cells, small_config, store=store)
        assert store.session["hits"] == 3
        plain = runner.run(cells, small_config)
        for c, w, p in zip(cold, warm, plain):
            assert c.to_json() == w.to_json() == p.to_json()

    def test_partial_hit_partition(self, store, small_config):
        runner = ParallelSweepRunner(workers=1)
        runner.run(small_cells(("volatile",)), small_config, store=store)
        results = runner.run(small_cells(), small_config, store=store)
        assert store.session["hits"] == 1
        assert store.session["misses"] == 3  # probe misses + first cold run
        assert [r.protocol for r in results] == list(PROTOCOLS)

    def test_knob_change_misses(self, store, small_config):
        runner = ParallelSweepRunner(workers=1)
        runner.run(small_cells(), small_config, store=store)
        before = dict(store.session)
        runner.run(
            [replace(cell, seed=8) for cell in small_cells()],
            small_config,
            store=store,
        )
        assert store.session["hits"] == before["hits"]
        assert store.session["puts"] == before["puts"] + 3

    def test_all_protocols_both_modes_bit_identical(self, small_config, tmp_path):
        """The acceptance property: warm is bit-identical to cold for
        every protocol x eager/lazy, with functional state engaged."""
        cells = [
            SweepCell(
                protocol=name,
                trace=SPEC,
                seed=7,
                functional=True,
                integrity_mode=mode,
            )
            for name in protocol_names()
            for mode in INTEGRITY_MODES
        ]
        store = ResultStore(tmp_path / "property-store")
        runner = ParallelSweepRunner(workers=1)
        cold = runner.run(cells, small_config, store=store)
        assert store.session["puts"] == len(cells)
        warm = runner.run(cells, small_config, store=store)
        assert store.session["hits"] == len(cells)
        for cell, c, w in zip(cells, cold, warm):
            assert c.to_json() == w.to_json(), (
                f"{cell.protocol}/{cell.integrity_mode}"
            )

    def test_run_protocol_sweep_store_path(self, store, small_config):
        kwargs = dict(protocols=PROTOCOLS, seed=7)
        cold = run_protocol_sweep(SPEC, small_config, store=store, **kwargs)
        warm = run_protocol_sweep(SPEC, small_config, store=store, **kwargs)
        plain = run_protocol_sweep(SPEC, small_config, **kwargs)
        for name in PROTOCOLS:
            assert (
                cold[name].to_json()
                == warm[name].to_json()
                == plain[name].to_json()
            )

    def test_sweep_normalized_store_path(self, store, small_config):
        kwargs = dict(protocols=PROTOCOLS, seed=7, baseline="volatile")
        cold = sweep_normalized(SPEC, small_config, store=store, **kwargs)
        warm = sweep_normalized(SPEC, small_config, store=store, **kwargs)
        assert cold == warm == sweep_normalized(SPEC, small_config, **kwargs)

    def test_raw_trace_is_fingerprinted_literally(self, store, small_config):
        from repro.workloads.registry import materialize_trace

        trace = materialize_trace(SPEC)
        cold = run_protocol_sweep(
            trace, small_config, protocols=("volatile",), store=store
        )
        warm = run_protocol_sweep(
            trace, small_config, protocols=("volatile",), store=store
        )
        assert store.session["hits"] == 1
        assert cold["volatile"].to_json() == warm["volatile"].to_json()


class TestJournalStoreCompose:
    def run(self, run_dir, store, **kwargs):
        from repro.bench.perf import run_resilient_sweep

        return run_resilient_sweep(
            run_dir,
            benchmarks=("blackscholes",),
            protocols=PROTOCOLS,
            accesses=300,
            seed=7,
            store=store,
            **kwargs,
        )

    def test_warm_run_artifact_bit_identical(self, tmp_path, store):
        cold = self.run(tmp_path / "cold", store)
        assert store.session["puts"] == 3
        warm = self.run(tmp_path / "warm", store)
        assert store.session["hits"] >= 3
        storeless = self.run(tmp_path / "plain", None)
        blob = Path(cold["artifact"]).read_bytes()
        assert blob == Path(warm["artifact"]).read_bytes()
        assert blob == Path(storeless["artifact"]).read_bytes()

    def test_warm_run_journals_zero_attempts(self, tmp_path, store):
        self.run(tmp_path / "cold", store)
        warm = self.run(tmp_path / "warm", store)
        assert warm["completed"] == 3
        journal = [
            json.loads(line)
            for line in Path(warm["journal"]).read_text().splitlines()
        ]
        entries = [rec for rec in journal if rec.get("status") == "done"]
        assert len(entries) == 3
        assert all(entry["attempts"] == 0 for entry in entries)

    def test_resumed_journal_backfills_store(self, tmp_path, store):
        self.run(tmp_path / "run", None)  # journal only, store off
        outcome = self.run(tmp_path / "run", store, resume=True)
        assert outcome["completed"] == 3
        # Nothing recomputed, yet every journaled cell is now stored.
        assert store.session["puts"] == 3
        assert store.stats()["objects"] == 3


# ----------------------------------------------------------------------
# resolution + CLI surface
# ----------------------------------------------------------------------


class TestResolveStoreDir:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        assert resolve_store_dir() is None

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, "/env/store")
        assert resolve_store_dir("/flag/store") == Path("/flag/store")

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, "/env/store")
        assert resolve_store_dir() == Path("/env/store")

    def test_no_store_wins(self, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, "/env/store")
        assert resolve_store_dir("/flag/store", no_store=True) is None


class TestStoreCli:
    def sweep(self, tmp_path, extra=()):
        return main(
            [
                "sweep", "blackscholes", "--accesses", "300",
                "--protocols", "volatile", "amnt",
                "--store-dir", str(tmp_path / "store"),
                "--no-telemetry", *extra,
            ]
        )

    def test_sweep_populates_then_hits(self, tmp_path, capsys):
        assert self.sweep(tmp_path) == EXIT_OK
        assert "2 miss(es)" in capsys.readouterr().out
        assert self.sweep(tmp_path) == EXIT_OK
        assert "2 hit(s)" in capsys.readouterr().out

    def test_no_store_flag(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "env-store"))
        assert (
            main(
                [
                    "sweep", "blackscholes", "--accesses", "300",
                    "--protocols", "volatile",
                    "--no-store", "--no-telemetry",
                ]
            )
            == EXIT_OK
        )
        assert "store:" not in capsys.readouterr().out
        assert not (tmp_path / "env-store").exists()

    def test_stats_verify_ls_gc(self, tmp_path, capsys):
        self.sweep(tmp_path)
        capsys.readouterr()
        directory = str(tmp_path / "store")
        assert main(["store", "stats", "--store-dir", directory]) == EXIT_OK
        assert "objects" in capsys.readouterr().out
        assert main(["store", "verify", "--store-dir", directory]) == EXIT_OK
        assert "2 ok, 0 corrupt" in capsys.readouterr().out
        assert main(["store", "ls", "--store-dir", directory]) == EXIT_OK
        assert "volatile" in capsys.readouterr().out
        assert (
            main(
                [
                    "store", "gc", "--store-dir", directory,
                    "--max-objects", "1",
                ]
            )
            == EXIT_OK
        )
        assert "removed 1" in capsys.readouterr().out

    def test_verify_flags_corruption(self, tmp_path, capsys):
        self.sweep(tmp_path)
        store = ResultStore(tmp_path / "store")
        fp = store.fingerprints()[0]
        store.object_path(fp).write_text("torn")
        assert (
            main(["store", "verify", "--store-dir", str(store.directory)])
            == EXIT_INTEGRITY
        )
        captured = capsys.readouterr()
        assert "CORRUPT" in captured.err

    def test_store_requires_directory(self, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        with pytest.raises(SystemExit):
            main(["store", "stats"])


class TestHistoryCli:
    def test_renders_trend_table(self, tmp_path, capsys):
        log = tmp_path / "hist.jsonl"
        entries = [
            {
                "recorded_at": "2026-08-01T00:00:00+00:00",
                "timings_seconds": {"serial": 2.0, "warm_sweep": 0.2},
                "speedups": {"warm_vs_cold": 10.0},
            },
            {
                "recorded_at": "2026-08-02T00:00:00+00:00",
                "timings_seconds": {"serial": 1.0, "warm_sweep": 0.1},
                "speedups": {"warm_vs_cold": 12.0},
            },
        ]
        log.write_text(
            "".join(json.dumps(entry) + "\n" for entry in entries)
        )
        assert main(["history", str(log)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "2 recorded run(s)" in out
        assert "serial" in out and "warm_vs_cold" in out
        assert "-50" in out  # serial halved

    def test_missing_log_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["history", str(tmp_path / "absent.jsonl")])


class TestCacheLimitFlag:
    def test_cli_flag_applies(self, tmp_path, capsys):
        from repro.workloads.registry import (
            effective_cache_limits,
            set_plan_cache_limit,
            set_stream_cache_limit,
            set_trace_cache_limit,
        )

        before = effective_cache_limits()
        try:
            assert (
                main(
                    [
                        "sweep", "blackscholes", "--accesses", "300",
                        "--protocols", "volatile",
                        "--cache-limit", "5", "--no-telemetry",
                    ]
                )
                == EXIT_OK
            )
            assert effective_cache_limits() == {
                "trace": 5, "stream": 5, "plan": 5,
            }
        finally:
            set_trace_cache_limit(before["trace"])
            set_stream_cache_limit(before["stream"])
            set_plan_cache_limit(before["plan"])

    def test_invalid_limit_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep", "blackscholes", "--cache-limit", "0",
                    "--no-telemetry",
                ]
            )

    @pytest.mark.parametrize(
        "value,expected",
        [("7", {"trace": 7, "stream": 7, "plan": 7}),
         ("bogus", {"trace": 64, "stream": 32, "plan": 32}),
         ("0", {"trace": 64, "stream": 32, "plan": 32})],
    )
    def test_env_var_applies_at_import(self, value, expected):
        """$REPRO_CACHE_LIMIT is read at module import (so spawned
        workers inherit it); invalid values fall back to defaults."""
        import subprocess
        import sys

        out = subprocess.run(
            [
                sys.executable, "-c",
                "from repro.workloads.registry import effective_cache_limits;"
                "import json; print(json.dumps(effective_cache_limits()))",
            ],
            env={**os.environ, "REPRO_CACHE_LIMIT": value},
            capture_output=True, text=True, check=True,
        )
        assert json.loads(out.stdout) == expected
