"""Terminal bar chart rendering."""

from repro.bench.charts import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_empty(self):
        assert "(empty)" in bar_chart({})

    def test_scales_to_maximum(self):
        chart = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10

    def test_values_printed(self):
        chart = bar_chart({"leaf": 1.058}, precision=3)
        assert "1.058" in chart

    def test_title(self):
        chart = bar_chart({"a": 1.0}, title="Figure 4")
        assert chart.splitlines()[0] == "Figure 4"

    def test_reference_marker_visible_beyond_bar(self):
        chart = bar_chart({"a": 0.5}, width=10, reference=1.0)
        # Bar fills half; the baseline marker sits at the end region.
        assert "|" in chart

    def test_reference_extends_scale(self):
        # A reference above every value must widen the axis, not clip.
        chart = bar_chart({"a": 0.5}, width=10, reference=2.0)
        line = chart.splitlines()[0]
        assert line.count("█") <= 3  # 0.5 of a 2.0-wide axis

    def test_half_cell_rendering(self):
        chart = bar_chart({"a": 1.0, "b": 0.55}, width=10)
        assert "▌" in chart


class TestGroupedBarChart:
    def test_groups_and_members(self):
        series = {
            "canneal": {"amnt": 1.0, "anubis": 1.9},
            "xz": {"amnt": 1.1, "anubis": 1.6},
        }
        chart = grouped_bar_chart(series, title="Fig")
        assert "canneal:" in chart
        assert "xz:" in chart
        assert chart.count("amnt") == 2

    def test_shared_axis_across_groups(self):
        series = {
            "small": {"p": 1.0},
            "large": {"p": 4.0},
        }
        chart = grouped_bar_chart(series, width=8)
        lines = [line for line in chart.splitlines() if "p" in line]
        assert lines[0].count("█") == 2
        assert lines[1].count("█") == 8

    def test_member_order_respected(self):
        series = {"g": {"b": 1.0, "a": 2.0}}
        chart = grouped_bar_chart(series, members=["a", "b"])
        lines = chart.splitlines()
        assert lines[1].strip().startswith("a")

    def test_missing_member_renders_zero(self):
        series = {"g": {"a": 1.0}}
        chart = grouped_bar_chart(series, members=["a", "b"])
        assert "0.000" in chart

    def test_empty(self):
        assert "(empty)" in grouped_bar_chart({})
