"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "lbm"])
        args_dict = vars(args)
        assert args_dict["benchmark"] == "lbm"
        assert args_dict["subtree_level"] == 3

    def test_experiment_name_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_protocols_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "lbm", "--protocols", "made-up"]
            )


class TestCommands:
    def test_protocols_lists_registry(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        for name in ("amnt", "amnt++", "leaf", "strict", "anubis", "bmf"):
            assert name in out

    def test_area_table(self, capsys):
        assert main(["area-table"]) == 0
        out = capsys.readouterr().out
        assert "96B" in out
        assert "37.0KB" in out

    def test_recovery_table(self, capsys):
        assert main(["recovery-table"]) == 0
        out = capsys.readouterr().out
        assert "6222.22" in out
        assert "AMNT L3" in out

    def test_sweep_runs_small(self, capsys):
        code = main(
            [
                "sweep",
                "swaptions",
                "--accesses",
                "2000",
                "--protocols",
                "volatile",
                "leaf",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "swaptions" in out
        assert "leaf" in out

    def test_sweep_unknown_benchmark(self):
        with pytest.raises(SystemExit, match="unknown benchmark"):
            main(["sweep", "not-a-benchmark"])

    def test_profiles_lists_all_suites(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        for name in ("canneal", "xz", "kvstore"):
            assert name in out

    def test_crash_drill_succeeds_for_amnt(self, capsys):
        assert main(["crash-drill", "--protocol", "amnt", "--records", "80"]) == 0
        out = capsys.readouterr().out
        assert "recovery=OK" in out
        assert "records_intact=80/80" in out

    def test_crash_drill_fails_for_volatile(self, capsys):
        assert main(
            ["crash-drill", "--protocol", "volatile", "--records", "40"]
        ) == 1
        assert "recovery=FAILED" in capsys.readouterr().out
