"""The command-line interface."""

import pytest

from repro.cli import (
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_QUARANTINED,
    EXIT_RESUME_MISMATCH,
    build_parser,
    main,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "lbm"])
        args_dict = vars(args)
        assert args_dict["benchmark"] == "lbm"
        assert args_dict["subtree_level"] == 3

    def test_experiment_name_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_protocols_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "lbm", "--protocols", "made-up"]
            )


class TestCommands:
    def test_protocols_lists_registry(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        for name in ("amnt", "amnt++", "leaf", "strict", "anubis", "bmf"):
            assert name in out

    def test_area_table(self, capsys):
        assert main(["area-table"]) == 0
        out = capsys.readouterr().out
        assert "96B" in out
        assert "37.0KB" in out

    def test_recovery_table(self, capsys):
        assert main(["recovery-table"]) == 0
        out = capsys.readouterr().out
        assert "6222.22" in out
        assert "AMNT L3" in out

    def test_sweep_runs_small(self, capsys):
        code = main(
            [
                "sweep",
                "swaptions",
                "--accesses",
                "2000",
                "--protocols",
                "volatile",
                "leaf",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "swaptions" in out
        assert "leaf" in out

    def test_sweep_unknown_benchmark(self):
        with pytest.raises(SystemExit, match="unknown benchmark"):
            main(["sweep", "not-a-benchmark"])

    def test_profiles_lists_all_suites(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        for name in ("canneal", "xz", "kvstore"):
            assert name in out

    def test_crash_drill_succeeds_for_amnt(self, capsys):
        assert main(["crash-drill", "--protocol", "amnt", "--records", "80"]) == 0
        out = capsys.readouterr().out
        assert "recovery=OK" in out
        assert "records_intact=80/80" in out

    def test_crash_drill_fails_for_volatile(self, capsys):
        assert main(
            ["crash-drill", "--protocol", "volatile", "--records", "40"]
        ) == 1
        assert "recovery=FAILED" in capsys.readouterr().out


class TestResilienceCLI:
    """Exit codes of the supervised perf/faults modes.

    The full kill-at-a-checkpoint → resume → bit-identical-artifact
    round trip, through the real argv surface an operator uses.
    """

    def _faults_argv(self, tmp_path, *extra):
        return [
            "faults",
            "--protocols", "leaf",
            "--workloads", "hotshift",
            "--accesses", "300",
            "--crash-every", "150",
            "--phase-samples", "0",
            "--tamper-crashes", "0",
            "--output", str(tmp_path / "report.json"),
            *extra,
        ]

    def test_faults_kill_then_resume_bit_identical(self, tmp_path, capsys):
        clean_dir = tmp_path / "clean"
        killed_dir = tmp_path / "killed"

        code = main(
            self._faults_argv(tmp_path, "--run-dir", str(clean_dir))
        )
        assert code == EXIT_OK
        clean_report = (tmp_path / "report.json").read_bytes()

        code = main(
            self._faults_argv(
                tmp_path,
                "--run-dir", str(killed_dir),
                "--die-after-flushes", "1",
            )
        )
        assert code == EXIT_INTERRUPTED
        assert "continue with --resume" in capsys.readouterr().err

        code = main(self._faults_argv(tmp_path, "--resume", str(killed_dir)))
        assert code == EXIT_OK
        assert (tmp_path / "report.json").read_bytes() == clean_report

    def test_faults_resume_refused_on_changed_grid(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        code = main(
            self._faults_argv(
                tmp_path,
                "--run-dir", str(run_dir),
                "--die-after-flushes", "1",
            )
        )
        assert code == EXIT_INTERRUPTED
        capsys.readouterr()

        argv = self._faults_argv(tmp_path, "--resume", str(run_dir))
        argv[argv.index("300")] = "400"  # different trace length
        assert main(argv) == EXIT_RESUME_MISMATCH
        assert "resume refused" in capsys.readouterr().err

    def test_run_dir_and_resume_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                self._faults_argv(
                    tmp_path,
                    "--run-dir", str(tmp_path / "a"),
                    "--resume", str(tmp_path / "b"),
                )
            )

    def test_perf_quarantine_exit_code(self, tmp_path, capsys, monkeypatch):
        """A sweep that completes with quarantined cells exits 3 and
        prints each failure with its traceback."""
        from repro.bench import perf
        from repro.sim.supervisor import CellFailure

        failure = CellFailure(
            key="0001/leaf/blackscholes/a300/s2024",
            attempts=3,
            error_type="ValueError",
            message="injected",
            traceback="Traceback: injected failure",
        )

        def fake_sweep(run_dir, **kwargs):
            return {
                "cells": 2,
                "completed": 1,
                "failures": [failure],
                "outcomes": ["ok", failure],
                "artifact": run_dir / "SWEEP_results.json",
                "journal": run_dir / "journal.jsonl",
            }

        monkeypatch.setattr(perf, "run_resilient_sweep", fake_sweep)
        code = main(["perf", "--run-dir", str(tmp_path / "run")])
        assert code == EXIT_QUARANTINED
        captured = capsys.readouterr()
        assert "1 quarantined" in captured.out
        assert "QUARANTINED" in captured.err
        assert "injected failure" in captured.err
