"""Cross-validation: functional recovery traffic vs the analytic model.

Table 4 comes from an analytic bandwidth model. The functional recovery
procedures actually walk trees, so at small scale we can *count* the
work they do and check it against the model's structural assumptions:

* a full rebuild recomputes exactly the tree's inner-node population
  (the model's geometric-series term);
* an AMNT subtree rebuild recomputes one region's worth of nodes plus
  the upper path — ``1/regions`` of the full rebuild, the scaling that
  produces Table 4's AMNT rows;
* the read:write mix of a rebuild is arity:1 (8 children fetched per
  node written), the paper's stated recovery traffic shape.
"""

import pytest

from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import CrashInjector
from repro.util.units import MB


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


def populated_engine(config, protocol_name):
    mee = MemoryEncryptionEngine(
        config, make_protocol(protocol_name, config), functional=True
    )
    interval = config.amnt.movement_interval_writes
    for i in range(interval + 16):
        mee.write_block((i % 8) * 4096, data=bytes([i % 199 + 1]) * 64)
    return mee


class TestFullRebuildPopulation:
    def test_leaf_recovery_recomputes_every_inner_node(self, config):
        mee = populated_engine(config, "leaf")
        outcome = CrashInjector(mee).crash_and_recover()
        assert outcome.ok
        assert outcome.nodes_recomputed == mee.geometry.total_nodes()

    def test_model_inner_node_byte_ratio_matches_population(self, config):
        """The model says inner bytes = counter bytes / (arity - 1);
        the real tree's population agrees to within the ceil-rounding
        of partial levels."""
        mee = populated_engine(config, "leaf")
        geometry = mee.geometry
        modeled = geometry.num_counter_blocks / (geometry.arity - 1)
        assert geometry.total_nodes() == pytest.approx(modeled, rel=0.05)


class TestSubtreeScaling:
    def test_amnt_rebuild_is_one_region_share(self, config):
        full = populated_engine(config, "leaf")
        full_nodes = CrashInjector(full).crash_and_recover().nodes_recomputed

        amnt = populated_engine(config, "amnt")
        outcome = CrashInjector(amnt).crash_and_recover()
        assert outcome.ok
        regions = amnt.geometry.nodes_at_level(config.amnt.subtree_level)
        share = full_nodes / regions
        # One region's interior plus the short upper path.
        upper_path = config.amnt.subtree_level - 1
        assert outcome.nodes_recomputed == pytest.approx(
            share + upper_path, rel=0.10
        )

    def test_amnt_l4_rebuilds_less_than_l3(self, config):
        nodes = {}
        for level in (3, 4):
            level_config = config.with_amnt(subtree_level=level)
            mee = populated_engine(level_config, "amnt")
            nodes[level] = CrashInjector(mee).crash_and_recover().nodes_recomputed
        assert nodes[4] < nodes[3]


class TestTrafficShape:
    def test_rebuild_reads_arity_children_per_written_node(self, config):
        """Count actual line touches during a subtree rebuild: reads
        (children fetched) to writes (nodes stored) is the model's
        arity:1, within the slack of partial edge nodes."""
        mee = populated_engine(config, "leaf")
        mee.crash()
        tree = mee.tree
        subtree = (2, 0)
        first, last = tree.geometry.counter_range_of(subtree)
        reads = last - first  # counter leaves fetched
        _, written = tree.subtree_value_from_persisted(subtree)
        inner_reads = written - 1  # every non-root inner node re-read
        ratio = (reads + inner_reads) / written
        assert ratio == pytest.approx(tree.geometry.arity, rel=0.15)
