"""SGX-style integrity tree (version counters + per-node MACs)."""

import pytest

from repro.config import default_config
from repro.crypto.engine import RealCryptoEngine
from repro.errors import CrashConsistencyError, IntegrityError
from repro.integrity.geometry import TreeGeometry
from repro.integrity.sgx import SGXNode, SGXStyleTree
from repro.mem.backend import MetadataRegion, SparseMemory
from repro.util.units import MB


@pytest.fixture
def tree():
    geometry = TreeGeometry.from_config(default_config(capacity_bytes=64 * MB))
    return SGXStyleTree(geometry, RealCryptoEngine(), SparseMemory())


class TestNodeFormat:
    def test_encode_is_one_line(self):
        assert len(SGXNode().encode()) == 64

    def test_roundtrip(self):
        node = SGXNode(slots=[1, 2, 3, 4, 5, 6, 7, 2**56 - 1], mac=b"m" * 8)
        decoded = SGXNode.decode(node.encode())
        assert decoded.slots == node.slots
        assert decoded.mac == node.mac

    def test_decode_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            SGXNode.decode(bytes(63))

    def test_copy_is_independent(self):
        node = SGXNode()
        clone = node.copy()
        clone.slots[0] = 9
        assert node.slots[0] == 0


class TestVersionChain:
    def test_fresh_tree_verifies(self, tree):
        assert tree.verify_counter(0)
        assert tree.verify_counter(123)

    def test_bump_increments_leaf_version(self, tree):
        assert tree.counter_version(5) == 0
        tree.bump_counter(5)
        assert tree.counter_version(5) == 1

    def test_bump_increments_root_register(self, tree):
        tree.bump_counter(0)
        tree.bump_counter(9)
        assert tree.root_version == 2

    def test_bumped_chain_still_verifies(self, tree):
        for counter in (0, 7, 300):
            tree.bump_counter(counter)
        for counter in (0, 7, 300, 12):
            assert tree.verify_counter(counter)

    def test_siblings_unaffected(self, tree):
        tree.bump_counter(8)
        assert tree.counter_version(9) == 0
        assert tree.verify_counter(9)


class TestCrashSemantics:
    def test_unpersisted_bumps_lost_on_crash(self, tree):
        tree.bump_counter(3)
        lost = tree.crash()
        assert lost == tree.geometry.num_node_levels
        assert tree.counter_version(3) == 0

    def test_persisted_path_survives(self, tree):
        tree.bump_counter(3)
        tree.persist_path(3)
        tree.crash()
        assert tree.counter_version(3) == 1
        # Persisted chain internally MAC-consistent, and the root
        # register agrees (strict-persistence discipline).
        tree.rebuild_check_root()

    def test_lazy_root_contradicts_register(self, tree):
        tree.bump_counter(3)  # volatile only
        tree.crash()
        with pytest.raises(CrashConsistencyError):
            tree.rebuild_check_root()


class TestTamperDetection:
    def test_corrupted_node_detected(self, tree):
        tree.bump_counter(3)
        tree.persist_path(3)
        tree.crash()
        node = tree.geometry.ancestors_of_counter(3)[1]
        tree.backend.corrupt(MetadataRegion.TREE, node)
        assert not tree.verify_counter(3)

    def test_replayed_version_detected(self, tree):
        """Roll a persisted leaf-parent back to its genesis image: the
        parent's MAC chain exposes the replay."""
        leaf_parent = tree.geometry.ancestors_of_counter(3)[0]
        genesis_image = tree.persisted_node(leaf_parent).encode()
        tree.bump_counter(3)
        tree.persist_path(3)
        tree.backend.write(MetadataRegion.TREE, leaf_parent, genesis_image)
        tree.crash()
        assert not tree.verify_counter(3)

    def test_authenticate_or_raise(self, tree):
        tree.bump_counter(3)
        tree.persist_path(3)
        node = tree.geometry.ancestors_of_counter(3)[0]
        tree.backend.corrupt(MetadataRegion.TREE, node)
        tree.crash()
        with pytest.raises(IntegrityError):
            tree.authenticate_or_raise(3)


class TestAMNTAnchoring:
    """The paper's claim: AMNT ports to SGX-style trees with small
    modifications — an interior node's (version, MAC) pair is a
    sufficient NV register anchor."""

    def test_anchor_validates_persisted_subtree(self, tree):
        subtree = (3, 0)
        # Leaf-persistence inside the subtree: bump, persist the path
        # (as AMNT's movement/flush eventually would), capture anchor.
        tree.bump_counter(0)
        tree.persist_path(0)
        anchor = tree.subtree_anchor(subtree)
        tree.crash()
        assert tree.verify_subtree_against_anchor(subtree, anchor)

    def test_anchor_rejects_stale_subtree(self, tree):
        subtree = (3, 0)
        tree.bump_counter(0)
        tree.persist_path(0)
        anchor = tree.subtree_anchor(subtree)
        # Another in-subtree write happens but is NOT persisted and the
        # register moves on; after the crash the persisted image is
        # stale relative to the new anchor.
        tree.bump_counter(1)
        new_anchor = tree.subtree_anchor(subtree)
        tree.crash()
        assert tree.verify_subtree_against_anchor(subtree, anchor)
        assert not tree.verify_subtree_against_anchor(subtree, new_anchor)

    def test_anchor_rejects_tampered_subtree(self, tree):
        subtree = (3, 0)
        tree.bump_counter(0)
        tree.persist_path(0)
        anchor = tree.subtree_anchor(subtree)
        tree.crash()
        tree.backend.corrupt(MetadataRegion.TREE, subtree)
        assert not tree.verify_subtree_against_anchor(subtree, anchor)


class TestConstruction:
    def test_requires_arity_8(self):
        geometry = TreeGeometry(num_counter_blocks=64, arity=4)
        with pytest.raises(ValueError):
            SGXStyleTree(geometry, RealCryptoEngine(), SparseMemory())
