"""Property-based tests on protocol invariants.

These drive random write/read sequences through the engines and check
the structural invariants the paper's arguments rest on:

* **AMNT** (§4.2): only nodes inside the live subtree ever carry dirty
  bits (the dirty-scan-on-movement argument), and after any crash the
  recovery procedure succeeds with all persisted data verifying;
* **BMF**: the persistent root set remains an exact antichain cover of
  the leaves under any prune/merge schedule, and the nearest-root walk
  always terminates;
* **Osiris**: a persisted counter line is never more than
  ``stop_loss - 1`` bumps stale.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import CrashInjector
from repro.util.units import MB

CONFIG = default_config(capacity_bytes=64 * MB)

#: Page indices drawn so several level-3 regions get traffic.
pages = st.integers(min_value=0, max_value=1023)


def _engine(name, functional=False):
    return MemoryEncryptionEngine(
        CONFIG, make_protocol(name, CONFIG), functional=functional
    )


@settings(max_examples=25, deadline=None)
@given(writes=st.lists(pages, min_size=1, max_size=300))
def test_amnt_dirty_nodes_always_inside_live_subtree(writes):
    mee = _engine("amnt")
    protocol = mee.protocol
    for page in writes:
        mee.write_block(page * 4096)
        subtree = protocol.subtree_node()
        for level, index in mee.mdcache.dirty_tree_nodes():
            assert subtree is not None, "dirty nodes before any selection"
            assert protocol._node_in_subtree(level, index, subtree)


@settings(max_examples=15, deadline=None)
@given(
    writes=st.lists(pages, min_size=1, max_size=120),
    data=st.data(),
)
def test_amnt_crash_recovery_always_succeeds(writes, data):
    mee = _engine("amnt", functional=True)
    payloads = {}
    for page in writes:
        addr = page * 4096
        payload = bytes([page % 251 + 1]) * 64
        mee.write_block(addr, data=payload)
        payloads[addr] = payload
    outcome = CrashInjector(mee).crash_and_recover()
    assert outcome.ok, outcome.detail
    sample = list(payloads.items())
    for addr, payload in sample[: min(10, len(sample))]:
        assert mee.read_block_data(addr) == payload


@settings(max_examples=20, deadline=None)
@given(writes=st.lists(pages, min_size=1, max_size=600))
def test_bmf_coverage_invariant_under_any_schedule(writes):
    mee = _engine("bmf")
    protocol = mee.protocol
    for page in writes:
        mee.write_block(page * 4096)
    assert protocol.covers_all_leaves()
    # Every path still finds a persistent root.
    for page in set(writes):
        path = mee.ancestor_path(page)
        assert protocol.nearest_persistent_root(path) in protocol._root_counts
    assert len(protocol.persistent_roots()) <= CONFIG.bmf.root_set_entries


@settings(max_examples=20, deadline=None)
@given(writes=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=200))
def test_osiris_stop_loss_bound(writes):
    """After any write sequence, each page's persisted counter trails
    its current counter by at most stop_loss - 1 bumps."""
    mee = _engine("osiris", functional=True)
    current_bumps = {}
    for page in writes:
        mee.write_block(page * 4096)
        current_bumps[page] = current_bumps.get(page, 0) + 1
    stop_loss = CONFIG.osiris.stop_loss_interval
    for page, bumps in current_bumps.items():
        persisted = mee.tree.persisted_counter(page)
        persisted_bumps = persisted.minors[0]
        assert bumps - persisted_bumps <= stop_loss - 1
        assert persisted_bumps <= bumps


@settings(max_examples=10, deadline=None)
@given(writes=st.lists(pages, min_size=1, max_size=150))
def test_strict_leaves_nothing_dirty(writes):
    mee = _engine("strict")
    for page in writes:
        mee.write_block(page * 4096)
    assert list(mee.mdcache.dirty_tree_nodes()) == []
    for line in mee.mdcache._cache.dirty_lines():
        raise AssertionError(f"strict left {line.key!r} dirty")
