"""End-to-end resilience: kill a run at a checkpoint, resume, compare.

The contract under test is the tentpole guarantee: a sweep or campaign
killed at *any* checkpoint and restarted with ``resume`` must produce a
final artifact byte-for-byte identical to an uninterrupted run — the
journal only changes *when* cells execute, never *what* they compute.
"""

import pytest

from repro.bench.perf import SWEEP_RESULTS_NAME, run_resilient_sweep
from repro.errors import ResumeManifestMismatch
from repro.faults import default_fault_config, run_campaign
from repro.sim.supervisor import RunJournal, SupervisionPolicy
from repro.util.units import MB
from repro.workloads.registry import profile_spec

SEED = 2024
#: Near-zero backoff so any retries do not slow the suite down.
FAST = dict(backoff_base_seconds=0.01, backoff_max_seconds=0.02)

#: Tiny two-cell perf grid: one benchmark, two protocols.
PERF_KW = dict(
    benchmarks=("blackscholes",),
    protocols=("volatile", "leaf"),
    accesses=300,
    seed=SEED,
    workers=1,
)

CONFIG = default_fault_config(capacity_bytes=16 * MB)
TRACES = [profile_spec("faults", "hotshift", 600, SEED)]
CAMPAIGN_KW = dict(
    config=CONFIG,
    crash_every=200,
    phase_samples=1,
    tamper_crashes=1,
    seed=SEED,
    workers=1,
)


def _campaign(run_dir=None, resume=False, policy=None):
    return run_campaign(
        ["amnt"],
        TRACES,
        run_dir=run_dir,
        resume=resume,
        policy=policy,
        **CAMPAIGN_KW,
    )


class TestResilientSweepResume:
    def test_kill_and_resume_bit_identical(self, tmp_path):
        clean_dir = tmp_path / "clean"
        killed_dir = tmp_path / "killed"

        clean = run_resilient_sweep(
            clean_dir, policy=SupervisionPolicy(**FAST), **PERF_KW
        )
        assert clean["completed"] == clean["cells"] == 2

        with pytest.raises(KeyboardInterrupt):
            run_resilient_sweep(
                killed_dir,
                policy=SupervisionPolicy(die_after_flushes=1, **FAST),
                **PERF_KW,
            )
        partial = RunJournal.load(killed_dir)
        assert partial.counts() == {"done": 1, "failed": 0}

        resumed = run_resilient_sweep(
            killed_dir,
            resume=True,
            policy=SupervisionPolicy(**FAST),
            **PERF_KW,
        )
        assert resumed["completed"] == resumed["cells"] == 2
        assert not resumed["failures"]
        assert (killed_dir / SWEEP_RESULTS_NAME).read_bytes() == (
            clean_dir / SWEEP_RESULTS_NAME
        ).read_bytes()

    def test_resumed_results_equal_clean_cell_for_cell(self, tmp_path):
        clean = run_resilient_sweep(
            tmp_path / "clean", policy=SupervisionPolicy(**FAST), **PERF_KW
        )
        killed_dir = tmp_path / "killed"
        with pytest.raises(KeyboardInterrupt):
            run_resilient_sweep(
                killed_dir,
                policy=SupervisionPolicy(die_after_flushes=1, **FAST),
                **PERF_KW,
            )
        resumed = run_resilient_sweep(
            killed_dir,
            resume=True,
            policy=SupervisionPolicy(**FAST),
            **PERF_KW,
        )
        assert resumed["outcomes"] == clean["outcomes"]

    def test_resume_refused_on_different_grid(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(KeyboardInterrupt):
            run_resilient_sweep(
                run_dir,
                policy=SupervisionPolicy(die_after_flushes=1, **FAST),
                **PERF_KW,
            )
        changed = dict(PERF_KW, accesses=301)
        with pytest.raises(ResumeManifestMismatch) as excinfo:
            run_resilient_sweep(
                run_dir,
                resume=True,
                policy=SupervisionPolicy(**FAST),
                **changed,
            )
        assert "grid_digest" in excinfo.value.mismatches


class TestCampaignResume:
    def test_supervised_campaign_matches_plain(self, tmp_path):
        """Routing cells through the journal codec must not change
        their values: plain and supervised runs agree cell for cell."""
        plain = _campaign()
        supervised = _campaign(
            run_dir=tmp_path / "run", policy=SupervisionPolicy(**FAST)
        )
        assert supervised.baselines == plain.baselines
        assert supervised.cells == plain.cells
        assert not supervised.failures

    def test_kill_and_resume_bit_identical(self, tmp_path):
        clean = _campaign(
            run_dir=tmp_path / "clean", policy=SupervisionPolicy(**FAST)
        )

        killed_dir = tmp_path / "killed"
        # die_after_flushes=2: flush 1 journals the probe, flush 2 the
        # first planned cell — the kill lands mid-stage-2.
        with pytest.raises(KeyboardInterrupt):
            _campaign(
                run_dir=killed_dir,
                policy=SupervisionPolicy(die_after_flushes=2, **FAST),
            )
        partial = RunJournal.load(killed_dir)
        assert partial.counts()["done"] == 2

        resumed = _campaign(
            run_dir=killed_dir, resume=True, policy=SupervisionPolicy(**FAST)
        )
        assert resumed.baselines == clean.baselines
        assert resumed.cells == clean.cells

        clean_json = tmp_path / "clean.json"
        resumed_json = tmp_path / "resumed.json"
        clean.write_json(clean_json)
        resumed.write_json(resumed_json)
        assert resumed_json.read_bytes() == clean_json.read_bytes()

    def test_resume_refused_on_changed_parameters(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(KeyboardInterrupt):
            _campaign(
                run_dir=run_dir,
                policy=SupervisionPolicy(die_after_flushes=1, **FAST),
            )
        changed = dict(CAMPAIGN_KW, crash_every=150)
        with pytest.raises(ResumeManifestMismatch):
            run_campaign(
                ["amnt"],
                TRACES,
                run_dir=run_dir,
                resume=True,
                policy=SupervisionPolicy(**FAST),
                **changed,
            )
