"""NVM device timing and access accounting."""

import pytest

from repro.config import PCMConfig
from repro.mem.backend import MetadataRegion, SparseMemory
from repro.mem.nvm import NVMDevice


@pytest.fixture
def device():
    return NVMDevice(PCMConfig())


class TestTiming:
    def test_read_latency_matches_config(self, device):
        assert device.read_access(MetadataRegion.DATA) == 610

    def test_write_latency_matches_config(self, device):
        assert device.write_access(MetadataRegion.DATA) == 782


class TestAccounting:
    def test_reads_counted_per_region(self, device):
        device.read_access(MetadataRegion.DATA)
        device.read_access(MetadataRegion.COUNTERS)
        device.read_access(MetadataRegion.DATA)
        assert device.reads() == 3
        assert device.reads(MetadataRegion.DATA) == 2
        assert device.reads(MetadataRegion.COUNTERS) == 1

    def test_writes_and_persists_distinct(self, device):
        device.write_access(MetadataRegion.TREE)
        device.write_access(MetadataRegion.TREE, persist=True)
        assert device.writes(MetadataRegion.TREE) == 2
        assert device.persists(MetadataRegion.TREE) == 1
        assert device.persists() == 1

    def test_fresh_device_has_no_traffic(self, device):
        assert device.reads() == 0
        assert device.writes() == 0


class TestBackendPlumbing:
    def test_load_store_roundtrip(self):
        device = NVMDevice(PCMConfig(), backend=SparseMemory())
        device.store(MetadataRegion.DATA, 7, b"\x07" * 64)
        assert device.load(MetadataRegion.DATA, 7) == b"\x07" * 64

    def test_load_without_backend_raises(self, device):
        with pytest.raises(RuntimeError):
            device.load(MetadataRegion.DATA, 0)
