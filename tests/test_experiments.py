"""Experiment definitions return sane, paper-shaped structures.

These run at miniature sizes (a few thousand accesses, two benchmarks)
to stay fast; the full-size shapes are exercised by the benchmark
harness in ``benchmarks/``.
"""

from dataclasses import replace

import pytest

from repro.bench.experiments import (
    fig3_hotness,
    fig4_single_program,
    fig5_multiprogram,
    fig6_fig7_level_sweep,
    fig8_spec,
    table2_os_cost,
    table3_area,
    table4_recovery,
)
from repro.config import DataCacheConfig, default_config
from repro.util.units import KB, MB


@pytest.fixture(scope="module")
def config():
    """A smaller machine (and LLC) keeps the miniature experiments
    quick while preserving the protocols' relative behaviour."""
    base = default_config(capacity_bytes=512 * MB)
    return replace(
        base, llc=DataCacheConfig(capacity_bytes=64 * KB, associativity=16)
    )


class TestFig3:
    def test_multiprogram_disperses_accesses(self, config):
        data = fig3_hotness(accesses=4000, seed=1, config=config)
        single = data["lbm (single)"]
        multi = data["perlbench+lbm (multi)"]
        assert 0 < single["top_region_share"] <= 1.0
        # Co-running over an aged allocator spreads accesses across at
        # least as many regions as a single fresh program.
        assert multi["touched_regions"] >= single["touched_regions"]


class TestFig4:
    def test_structure_and_baseline(self, config):
        figure = fig4_single_program(
            benchmarks=["fluidanimate"],
            protocols=("volatile", "leaf", "strict", "amnt"),
            accesses=4000,
            config=config,
        )
        row = figure["fluidanimate"]
        assert row["volatile"] == 1.0
        assert row["strict"] >= row["leaf"] >= 1.0
        assert row["amnt"] >= 1.0


class TestFig5:
    def test_pairs_labelled_like_paper(self, config):
        figure = fig5_multiprogram(
            pairs=[("bodytrack", "fluidanimate")],
            protocols=("volatile", "leaf", "amnt"),
            accesses_each=3000,
            config=config,
        )
        assert list(figure) == ["bodyt and fluida"]


class TestFig6Fig7:
    def test_sweep_structure(self, config):
        sweep = fig6_fig7_level_sweep(
            pairs=[("bodytrack", "fluidanimate")],
            levels=(2, 3),
            accesses_each=3000,
            config=config,
        )
        series = sweep["bodyt and fluida"]
        assert set(series) == {
            "amnt_cycles", "amnt++_cycles", "amnt_hitrate", "amnt++_hitrate",
        }
        assert set(series["amnt_cycles"]) == {2, 3}
        for rate in series["amnt_hitrate"].values():
            assert 0.0 <= rate <= 1.0


class TestFig8:
    def test_structure(self, config):
        figure = fig8_spec(
            benchmarks=["xz"],
            protocols=("volatile", "leaf", "strict"),
            accesses=4000,
            config=config,
        )
        assert figure["xz"]["strict"] > figure["xz"]["leaf"]


class TestTable2:
    def test_columns(self, config):
        rows = table2_os_cost(
            pairs=[("bodytrack", "fluidanimate")],
            accesses_each=3000,
            config=config,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row["workload"] == "bodyt and fluida"
        assert row["normalized_performance"] > 0
        assert row["instruction_overhead"] >= 1.0


class TestTables3And4:
    def test_table3(self):
        rows = table3_area()
        assert {row.protocol for row in rows} == {"bmf", "anubis", "amnt"}

    def test_table4(self):
        rows = table4_recovery()
        by_label = {row["protocol"]: row for row in rows}
        assert by_label["leaf"]["2.00TB"] == pytest.approx(6222.21, rel=1e-4)
        assert by_label["AMNT L3"]["2.00TB"] == pytest.approx(97.22, rel=1e-3)
        assert by_label["strict"]["128.00TB"] == 0.0
