"""The WPQ persistence model: queue semantics, scheduler deferral
edges, and write-through equivalence (see docs/FAULTS.md)."""

import pytest

from repro.config import (
    ConfigValidationError,
    default_config,
    validate_persist_model,
)
from repro.errors import PowerFailure
from repro.faults import (
    PHASE_MDCACHE_EVICTION,
    PHASE_PERSIST_WINDOW,
    CrashScheduler,
    CrashTrigger,
    trigger_catalog,
)
from repro.faults.campaign import default_fault_config
from repro.mem.backend import MetadataRegion, SparseMemory
from repro.mem.nvm import PendingSparseMemory, WritePendingQueue
from repro.sim.engine import drive_memory_boundary, simulate
from repro.sim.machine import build_machine
from repro.sim.runner import FIGURE_PROTOCOLS
from repro.util.units import MB
from repro.workloads.registry import materialize_trace, profile_spec

SEED = 2024
SMALL = profile_spec("faults", "hotshift", 300, SEED)

DATA = MetadataRegion.DATA
COUNTERS = MetadataRegion.COUNTERS


class TestWritePendingQueue:
    def test_record_and_drain(self):
        wpq = WritePendingQueue()
        wpq.record(DATA, 1, False, None, b"a" * 8)
        wpq.record(DATA, 2, True, b"x" * 8, b"b" * 8)
        assert wpq.depth() == 2
        assert wpq.drain() == 2
        assert wpq.depth() == 0
        assert wpq.drains == 1

    def test_same_epoch_stores_write_combine(self):
        wpq = WritePendingQueue()
        wpq.record(DATA, 1, False, None, b"a" * 8)
        wpq.record(DATA, 1, True, b"a" * 8, b"b" * 8)
        (line,) = wpq.freeze()
        # One version, the newest value, the *first* store's pre-image.
        assert line.versions == [(0, b"b" * 8)]
        assert not line.existed
        assert line.original is None

    def test_fence_opens_a_new_epoch_only_when_dirty(self):
        wpq = WritePendingQueue()
        wpq.fence()
        wpq.fence()
        assert wpq.epoch == 0  # nothing staged: no ordering to record
        wpq.record(DATA, 1, False, None, b"a" * 8)
        wpq.fence()
        assert wpq.epoch == 1
        wpq.record(DATA, 1, True, b"a" * 8, b"b" * 8)
        (line,) = wpq.freeze()
        assert [epoch for epoch, _ in line.versions] == [0, 1]

    def test_auto_drain_empties_at_every_fence(self):
        wpq = WritePendingQueue(auto_drain=True)
        wpq.record(DATA, 1, False, None, b"a" * 8)
        wpq.fence()
        assert wpq.depth() == 0

    def test_freeze_stops_recording(self):
        wpq = WritePendingQueue()
        wpq.record(DATA, 1, False, None, b"a" * 8)
        assert len(wpq.freeze()) == 1
        wpq.record(DATA, 2, False, None, b"b" * 8)
        assert wpq.depth() == 1  # the post-freeze store was not journaled


class TestPendingSparseMemory:
    def test_stores_write_through_and_journal(self):
        wpq = WritePendingQueue()
        memory = PendingSparseMemory(wpq)
        memory.write(DATA, 7, b"new" + bytes(61))
        # The store is immediately visible (write-through reads) ...
        assert memory.read(DATA, 7, 64)[:3] == b"new"
        # ... and journaled with its pre-image for rollback.
        (line,) = wpq.freeze()
        assert (line.region, line.key) == (DATA, 7)
        assert not line.existed

    def test_wrap_shares_existing_contents(self):
        plain = SparseMemory()
        plain.write(COUNTERS, 3, b"c" * 64)
        wrapped = PendingSparseMemory.wrap(plain, WritePendingQueue())
        assert wrapped.read(COUNTERS, 3, 64) == b"c" * 64
        assert wrapped.contains(COUNTERS, 3)


class TestPersistModelConfig:
    def test_validate_rejects_unknown_model(self):
        with pytest.raises(ConfigValidationError):
            validate_persist_model("write-behind")

    def test_config_field_validated(self):
        from dataclasses import replace

        config = default_config(capacity_bytes=16 * MB)
        assert config.persist_model == "writethrough"
        with pytest.raises(ConfigValidationError):
            replace(config, persist_model="nope")

    def test_wpq_machine_attaches_queue_functional_only(self):
        config = default_fault_config(
            capacity_bytes=16 * MB, persist_model="wpq"
        )
        functional = build_machine(
            config, "amnt", functional=True, seed=SEED,
            integrity_mode="eager",
        )
        assert functional.mee.nvm.wpq is not None
        assert isinstance(functional.mee.nvm.backend, PendingSparseMemory)
        timing = build_machine(config, "amnt", functional=False, seed=SEED)
        assert timing.mee.nvm.wpq is None


class TestSchedulerGroupEdges:
    """Persist-group deferral boundaries (and the nested-group fix)."""

    def test_nested_group_commit_does_not_release_deferred_crash(self):
        # Regression: an inner begin/commit pair used to reset the
        # outer group's state, releasing the deferred crash early.
        scheduler = CrashScheduler(
            CrashTrigger("phase", 1, PHASE_MDCACHE_EVICTION)
        )
        scheduler.on_access(0)
        scheduler.begin_group()
        scheduler.on_phase(PHASE_MDCACHE_EVICTION)  # deferred
        scheduler.begin_group()
        scheduler.commit_group()  # inner commit: still inside the group
        assert scheduler.fired is None
        with pytest.raises(PowerFailure) as excinfo:
            scheduler.commit_group()  # outer commit releases it
        assert excinfo.value.write_committed
        assert not excinfo.value.in_group

    def test_access_trigger_on_first_access_of_group(self):
        # on_access fires before the write's group opens: the crash
        # lands at the access boundary, outside any group.
        scheduler = CrashScheduler(CrashTrigger("access", 0))
        with pytest.raises(PowerFailure) as excinfo:
            scheduler.on_access(0)
        assert not excinfo.value.write_committed
        assert not excinfo.value.in_group

    def test_deferred_crash_fires_at_commit_not_later(self):
        scheduler = CrashScheduler(
            CrashTrigger("phase", 1, PHASE_PERSIST_WINDOW)
        )
        scheduler.on_access(0)
        scheduler.begin_group()
        scheduler.on_persist()  # occurrence 1, deferred
        assert scheduler.fired is None
        with pytest.raises(PowerFailure):
            scheduler.commit_group()

    def test_back_to_back_groups_do_not_leak_deferral(self):
        # A committed first group must not mark the second group's
        # window as already-committed (or vice versa).
        scheduler = CrashScheduler(
            CrashTrigger("phase", 2, PHASE_PERSIST_WINDOW)
        )
        scheduler.on_access(0)
        scheduler.begin_group()
        scheduler.on_persist()  # occurrence 1: not the trigger
        scheduler.commit_group()
        scheduler.on_access(1)
        scheduler.begin_group()
        scheduler.on_persist()  # occurrence 2: deferred in group 2
        assert scheduler.fired is None
        with pytest.raises(PowerFailure) as excinfo:
            scheduler.commit_group()
        assert excinfo.value.access_index == 1
        assert excinfo.value.write_committed

    def test_persist_window_kind_fires_inside_group_undeferred(self):
        scheduler = CrashScheduler(CrashTrigger("persist-window", 1))
        scheduler.on_access(0)
        scheduler.begin_group()
        with pytest.raises(PowerFailure) as excinfo:
            scheduler.on_persist()
        assert not excinfo.value.write_committed
        assert excinfo.value.in_group
        assert excinfo.value.phase == PHASE_PERSIST_WINDOW

    def test_catalog_lists_all_three_kinds(self):
        kinds = [kind for kind, _, _ in trigger_catalog()]
        assert kinds == ["access", "phase", "persist-window"]
        for kind, example, description in trigger_catalog():
            assert example and description


def _functional_run(persist_model, protocol, auto_drain=False):
    config = default_fault_config(
        capacity_bytes=16 * MB, persist_model=persist_model
    )
    machine = build_machine(
        config, protocol, functional=True, seed=SEED, integrity_mode="eager"
    )
    if auto_drain and machine.mee.nvm.wpq is not None:
        machine.mee.nvm.wpq.auto_drain = True
    record = drive_memory_boundary(
        machine, materialize_trace(SMALL), seed=SEED
    )
    return machine, record


def _image_of(machine):
    backend = machine.mee.nvm.backend
    return {
        region: dict(backend._region(region)) for region in MetadataRegion
    }


class TestWriteThroughEquivalence:
    """WPQ with a full drain at every fence == write-through, for every
    figure protocol, functionally and in timing."""

    @pytest.mark.parametrize("protocol", FIGURE_PROTOCOLS)
    def test_functional_state_bit_identical(self, protocol):
        base_machine, base_record = _functional_run("writethrough", protocol)
        wpq_machine, wpq_record = _functional_run(
            "wpq", protocol, auto_drain=True
        )
        assert wpq_record.golden == base_record.golden
        assert wpq_record.accesses_completed == base_record.accesses_completed
        assert _image_of(wpq_machine) == _image_of(base_machine)

    @pytest.mark.parametrize("protocol", ("amnt", "strict"))
    def test_timing_results_bit_identical(self, protocol):
        results = []
        for persist_model in ("writethrough", "wpq"):
            config = default_fault_config(
                capacity_bytes=16 * MB, persist_model=persist_model
            )
            machine = build_machine(
                config, protocol, functional=False, seed=SEED
            )
            results.append(
                simulate(machine, materialize_trace(SMALL), seed=SEED)
            )
        base, wpq = results
        assert wpq.cycles == base.cycles
        assert wpq.nvm_stats == base.nvm_stats
        assert wpq.protocol_stats == base.protocol_stats

    def test_commit_drain_model_matches_writethrough_when_uncrashed(self):
        # The real (non-auto-drain) model drains at persist-group
        # commits; an uncrashed run must still end bit-identical.
        base_machine, base_record = _functional_run("writethrough", "amnt")
        wpq_machine, wpq_record = _functional_run("wpq", "amnt")
        assert wpq_record.golden == base_record.golden
        assert _image_of(wpq_machine) == _image_of(base_machine)
        assert wpq_machine.mee.nvm.wpq.drains > 0
