"""System configuration: Table 1 defaults and validation."""

import pytest

from repro.config import (
    AMNTConfig,
    AnubisConfig,
    BMFConfig,
    MetadataCacheConfig,
    OsirisConfig,
    PCMConfig,
    SecurityConfig,
    SystemConfig,
    default_config,
)
from repro.errors import ConfigError
from repro.util.units import GB, KB


class TestTable1Defaults:
    """The defaults are the paper's Table 1 machine."""

    def test_pcm_capacity_8gb(self):
        assert default_config().pcm.capacity_bytes == 8 * GB

    def test_pcm_latencies(self):
        pcm = default_config().pcm
        assert pcm.read_latency_ns == 305.0
        assert pcm.write_latency_ns == 391.0

    def test_pcm_latency_cycles_at_2ghz(self):
        pcm = default_config().pcm
        assert pcm.read_latency_cycles == 610
        assert pcm.write_latency_cycles == 782

    def test_metadata_cache_64kb_2cycles(self):
        cache = default_config().metadata_cache
        assert cache.capacity_bytes == 64 * KB
        assert cache.access_latency_cycles == 2
        assert cache.num_lines == 1024

    def test_bmt_arities(self):
        security = default_config().security
        assert security.tree_arity == 8  # 8-ary integrity nodes
        assert security.counters_per_block == 64  # 64-ary counters

    def test_amnt_knobs(self):
        amnt = default_config().amnt
        assert amnt.subtree_level == 3
        assert amnt.movement_interval_writes == 64
        assert amnt.history_buffer_entries == 64

    def test_history_buffer_is_768_bits(self):
        # n * 2*log2(n) = 64 * 12 = 768 (Section 4.2).
        assert default_config().amnt.history_buffer_bits == 768

    def test_recovery_read_bandwidth_12gbs(self):
        # 6 channels x 4 GB/s x 50% reads (Section 6.7).
        pcm = default_config().pcm
        assert pcm.recovery_read_bandwidth_bytes_per_s == 12 * GB


class TestValidation:
    def test_non_power_of_two_capacity_rejected(self):
        with pytest.raises(ConfigError):
            PCMConfig(capacity_bytes=3 * GB)

    def test_nonpositive_latency_rejected(self):
        with pytest.raises(ConfigError):
            PCMConfig(read_latency_ns=0)

    def test_counter_arity_must_match_page_geometry(self):
        with pytest.raises(ConfigError):
            SecurityConfig(counters_per_block=32)

    def test_metadata_cache_set_division(self):
        with pytest.raises(ConfigError):
            MetadataCacheConfig(capacity_bytes=64 * KB, associativity=3)

    def test_subtree_level_must_exist(self):
        with pytest.raises(ConfigError):
            default_config(subtree_level=30)

    def test_subtree_level_one_is_reserved_for_root(self):
        with pytest.raises(ConfigError):
            AMNTConfig(subtree_level=1)

    def test_osiris_interval_positive(self):
        with pytest.raises(ConfigError):
            OsirisConfig(stop_loss_interval=0)

    def test_bmf_root_set_divides(self):
        with pytest.raises(ConfigError):
            BMFConfig(root_set_bytes=100)

    def test_memory_must_hold_a_page(self):
        with pytest.raises(ConfigError):
            SystemConfig(pcm=PCMConfig(capacity_bytes=2048))


class TestDerivedAndCopies:
    def test_with_amnt_replaces_only_amnt(self):
        config = default_config().with_amnt(subtree_level=4)
        assert config.amnt.subtree_level == 4
        assert config.pcm.capacity_bytes == 8 * GB

    def test_with_pcm_replaces_only_pcm(self):
        config = default_config().with_pcm(capacity_bytes=GB)
        assert config.pcm.capacity_bytes == GB
        assert config.amnt.subtree_level == 3

    def test_default_config_kwargs(self):
        config = default_config(capacity_bytes=GB, subtree_level=4)
        assert config.pcm.capacity_bytes == GB
        assert config.amnt.subtree_level == 4

    def test_bmf_root_set_entries(self):
        assert BMFConfig().root_set_entries == 64

    def test_anubis_shadow_entry_bytes(self):
        # 1024 lines x 37 B = 37 kB (Table 3).
        assert AnubisConfig().shadow_entry_bytes == 37

    def test_configs_are_frozen(self):
        config = default_config()
        with pytest.raises(AttributeError):
            config.seed = 1


class TestValidationFields:
    """ConfigValidationError names the exact offending field, so a CLI
    or sweep harness can point at what to fix."""

    def _field(self, excinfo):
        return excinfo.value.field

    def test_subclasses_config_error(self):
        from repro.errors import ConfigValidationError

        assert issubclass(ConfigValidationError, ConfigError)
        error = ConfigValidationError("pcm.capacity_bytes", "bad")
        assert error.field == "pcm.capacity_bytes"
        assert str(error) == "pcm.capacity_bytes: bad"

    def test_pcm_capacity_field(self):
        from repro.errors import ConfigValidationError

        with pytest.raises(ConfigValidationError) as excinfo:
            PCMConfig(capacity_bytes=3 * GB)
        assert self._field(excinfo) == "pcm.capacity_bytes"
        with pytest.raises(ConfigValidationError) as excinfo:
            PCMConfig(capacity_bytes=0)
        assert self._field(excinfo) == "pcm.capacity_bytes"

    def test_security_block_field(self):
        from repro.errors import ConfigValidationError

        with pytest.raises(ConfigValidationError) as excinfo:
            SecurityConfig(block_bytes=48)
        assert self._field(excinfo) == "security.block_bytes"

    def test_metadata_cache_fields(self):
        from repro.errors import ConfigValidationError

        with pytest.raises(ConfigValidationError) as excinfo:
            MetadataCacheConfig(capacity_bytes=64 * KB, associativity=3)
        assert self._field(excinfo) == "metadata_cache.associativity"
        with pytest.raises(ConfigValidationError) as excinfo:
            MetadataCacheConfig(capacity_bytes=0)
        assert self._field(excinfo) == "metadata_cache.capacity_bytes"

    def test_amnt_subtree_field(self):
        from repro.errors import ConfigValidationError

        with pytest.raises(ConfigValidationError) as excinfo:
            AMNTConfig(subtree_level=1)
        assert self._field(excinfo) == "amnt.subtree_level"
        with pytest.raises(ConfigValidationError) as excinfo:
            AMNTConfig(multi_subtrees=0)
        assert self._field(excinfo) == "amnt.multi_subtrees"

    def test_osiris_interval_field(self):
        from repro.errors import ConfigValidationError

        with pytest.raises(ConfigValidationError) as excinfo:
            OsirisConfig(stop_loss_interval=0)
        assert self._field(excinfo) == "osiris.stop_loss_interval"

    def test_bmf_root_set_field(self):
        from repro.errors import ConfigValidationError

        with pytest.raises(ConfigValidationError) as excinfo:
            BMFConfig(root_set_bytes=100)
        assert self._field(excinfo) == "bmf.root_set_bytes"

    def test_system_capacity_field(self):
        from repro.errors import ConfigValidationError

        with pytest.raises(ConfigValidationError) as excinfo:
            SystemConfig(pcm=PCMConfig(capacity_bytes=2048))
        assert self._field(excinfo) == "pcm.capacity_bytes"
