"""Recovery robustness: repeated crashes, torn recovery, seed stability.

Real deployments crash at inconvenient times — including *during
recovery*. The procedures here only ever write derived state (recomputed
nodes) back to NVM, so recovery must be restartable and idempotent.
These tests stage those scenarios; a separate class checks that the
simulator's protocol orderings are stable across seeds (the figures are
claims about behaviour, not about one lucky RNG stream).
"""

from dataclasses import replace

import pytest

from repro.config import DataCacheConfig, default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import CrashInjector
from repro.sim.runner import sweep_normalized
from repro.util.units import MB
from repro.workloads.synthetic import WorkloadProfile, generate_trace


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


def populated(config, protocol):
    mee = MemoryEncryptionEngine(
        config, make_protocol(protocol, config), functional=True
    )
    interval = config.amnt.movement_interval_writes
    for i in range(interval + 10):
        mee.write_block((i % 6) * 4096, data=bytes([i % 200 + 1]) * 64)
    return mee


class TestRecoveryIdempotency:
    @pytest.mark.parametrize("protocol", ["leaf", "osiris", "anubis", "amnt"])
    def test_recover_twice_is_safe(self, config, protocol):
        mee = populated(config, protocol)
        injector = CrashInjector(mee)
        first = injector.crash_and_recover()
        assert first.ok
        # A second recovery over the already-repaired image must also
        # succeed (monitoring reboots, watchdog retries, ...).
        second = injector.recover()
        assert second.ok
        assert mee.read_block_data(0) is not None

    @pytest.mark.parametrize("protocol", ["leaf", "amnt"])
    def test_crash_during_recovery_is_restartable(self, config, protocol):
        """Interrupt recovery after its first phase (some nodes already
        rewritten), crash again, recover from scratch."""
        mee = populated(config, protocol)
        injector = CrashInjector(mee)
        injector.crash_only()
        # Partial repair: rebuild one small subtree only, then "crash"
        # again before the procedure finishes.
        mee.tree.subtree_value_from_persisted(
            (mee.geometry.num_node_levels, 0)
        )
        mee.crash()
        outcome = injector.recover()
        assert outcome.ok, outcome.detail

    def test_crash_recover_loop_with_interleaved_writes(self, config):
        mee = populated(config, "amnt")
        injector = CrashInjector(mee)
        for round_number in range(4):
            payload = bytes([round_number + 10]) * 64
            mee.write_block(4096, data=payload)
            assert injector.crash_and_recover().ok
            assert mee.read_block_data(4096) == payload


class TestSeedStability:
    def test_protocol_ordering_stable_across_seeds(self):
        """leaf <= amnt < strict must hold for any seed, not one."""
        config = replace(
            default_config(capacity_bytes=64 * MB),
            llc=DataCacheConfig(capacity_bytes=64 * 1024, associativity=16),
        )
        profile = WorkloadProfile(
            name="stability",
            footprint_bytes=2 * MB,
            num_accesses=3000,
            write_fraction=0.45,
            think_cycles=4,
        )
        for seed in (1, 2, 3):
            trace = generate_trace(profile, seed=seed)
            normalized = sweep_normalized(
                trace,
                config,
                protocols=("leaf", "strict", "amnt"),
                seed=seed,
            )
            assert normalized["leaf"] <= normalized["amnt"] * 1.05, seed
            assert normalized["amnt"] < normalized["strict"], seed
