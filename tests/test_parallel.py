"""The parallel sweep runner, trace specs, and result serialization."""

import json
import pickle

import pytest

from dataclasses import replace

from repro.config import DataCacheConfig, default_config
from repro.sim.parallel import (
    ParallelSweepRunner,
    SweepCell,
    default_workers,
    run_cell,
)
from repro.sim.results import SimulationResult
from repro.sim.runner import run_protocol_sweep
from repro.util.units import MB
from repro.workloads.registry import (
    TraceSpec,
    literal_spec,
    materialize_trace,
    multiprogram_spec,
    profile_spec,
    trace_cache_clear,
    trace_cache_size,
)
from repro.workloads.synthetic import WorkloadProfile, generate_trace

#: Grid kept deliberately small: 2 workloads x 3 protocols x 2k accesses
#: runs in seconds even on one core while still exercising both the
#: strict (tree-walk) and volatile (lazy) extremes.
GRID_PROTOCOLS = ("volatile", "leaf", "strict")
GRID_ACCESSES = 2_000
GRID_SEED = 2024


@pytest.fixture
def config():
    base = default_config(capacity_bytes=64 * MB)
    return replace(
        base,
        llc=DataCacheConfig(capacity_bytes=64 * 1024, associativity=16),
    )


def grid_cells():
    return [
        SweepCell(
            protocol=protocol,
            trace=profile_spec("parsec", name, GRID_ACCESSES, GRID_SEED),
            seed=GRID_SEED,
        )
        for name in ("blackscholes", "canneal")
        for protocol in GRID_PROTOCOLS
    ]


class TestTraceSpec:
    def test_profile_spec_matches_direct_generation(self):
        from repro.workloads.parsec import parsec_profile

        spec = profile_spec("parsec", "bodytrack", 500, seed=7)
        direct = generate_trace(
            parsec_profile("bodytrack").scaled(accesses=500), seed=7
        )
        assert materialize_trace(spec, cache=False).accesses == direct.accesses

    def test_multiprogram_spec_matches_direct_generation(self):
        from repro.workloads.multiprogram import multiprogram_trace
        from repro.workloads.parsec import parsec_profile

        spec = multiprogram_spec(
            "parsec", ("bodytrack", "fluidanimate"), 400, seed=7
        )
        direct = multiprogram_trace(
            [parsec_profile("bodytrack"), parsec_profile("fluidanimate")],
            seed=7,
            accesses_each=400,
        )
        assert materialize_trace(spec, cache=False).accesses == direct.accesses

    def test_literal_spec_round_trips(self):
        profile = WorkloadProfile(
            name="lit", footprint_bytes=1 * MB, num_accesses=200,
            write_fraction=0.3,
        )
        trace = generate_trace(profile, seed=5)
        rebuilt = materialize_trace(literal_spec(trace), cache=False)
        assert rebuilt.name == trace.name
        assert rebuilt.accesses == trace.accesses

    def test_cache_returns_same_object(self):
        trace_cache_clear()
        spec = profile_spec("parsec", "swaptions", 300, seed=1)
        first = materialize_trace(spec)
        assert materialize_trace(spec) is first
        assert trace_cache_size() == 1
        trace_cache_clear()
        assert trace_cache_size() == 0

    def test_spec_is_picklable_and_hashable(self):
        spec = profile_spec("spec", "lbm", 100, seed=3)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, profile_spec("spec", "lbm", 100, seed=3)}) == 1

    def test_unknown_suite_rejected(self):
        with pytest.raises(KeyError, match="unknown workload suite"):
            materialize_trace(
                profile_spec("nope", "lbm", 100, seed=3), cache=False
            )


class TestParallelEquivalence:
    def test_parallel_matches_serial_cell_for_cell(self, config):
        """workers=4 must be bit-identical to workers=1, per cell."""
        cells = grid_cells()
        serial = ParallelSweepRunner(workers=1).run(cells, config)
        parallel = ParallelSweepRunner(workers=4).run(cells, config)
        assert len(serial) == len(parallel) == len(cells)
        for cell, s, p in zip(cells, serial, parallel):
            assert s == p, f"cell {cell.protocol}/{cell.trace.label()} diverged"
            assert s.cycles == p.cycles
            assert s.llc_hit_rate == p.llc_hit_rate

    def test_two_parallel_runs_agree(self, config):
        """Same seed, same grid: scheduling must not leak into results."""
        cells = grid_cells()
        first = ParallelSweepRunner(workers=4).run(cells, config)
        second = ParallelSweepRunner(workers=4).run(cells, config)
        assert first == second

    def test_results_arrive_in_cell_order(self, config):
        cells = grid_cells()
        results = ParallelSweepRunner(workers=4).run(cells, config)
        assert [r.protocol for r in results] == [c.protocol for c in cells]

    def test_run_protocol_sweep_workers_match(self, config):
        spec = profile_spec("parsec", "blackscholes", GRID_ACCESSES, GRID_SEED)
        serial = run_protocol_sweep(
            spec, config, GRID_PROTOCOLS, seed=GRID_SEED, workers=1
        )
        parallel = run_protocol_sweep(
            spec, config, GRID_PROTOCOLS, seed=GRID_SEED, workers=4
        )
        assert serial == parallel

    def test_sweep_accepts_materialized_trace_with_workers(self, config):
        trace = materialize_trace(
            profile_spec("parsec", "blackscholes", GRID_ACCESSES, GRID_SEED)
        )
        serial = run_protocol_sweep(
            trace, config, ("volatile", "leaf"), seed=GRID_SEED, workers=1
        )
        parallel = run_protocol_sweep(
            trace, config, ("volatile", "leaf"), seed=GRID_SEED, workers=2
        )
        assert serial == parallel

    def test_per_cell_config_override(self, config):
        other = config.with_amnt(subtree_level=4)
        cell = SweepCell(
            protocol="amnt",
            trace=profile_spec("parsec", "blackscholes", 1_000, GRID_SEED),
            seed=GRID_SEED,
            config=other,
        )
        overridden = run_cell(cell, config)
        plain = run_cell(replace(cell, config=None), config)
        assert overridden.protocol == plain.protocol == "amnt"


class TestFallback:
    def test_workers_one_never_builds_a_pool(self, config, monkeypatch):
        import multiprocessing

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool built for workers=1")

        monkeypatch.setattr(multiprocessing, "get_context", explode)
        cells = grid_cells()[:2]
        results = ParallelSweepRunner(workers=1).run(cells, config)
        assert len(results) == 2

    def test_broken_pool_falls_back_in_process(self, config, monkeypatch):
        runner = ParallelSweepRunner(workers=4)
        monkeypatch.setattr(
            ParallelSweepRunner,
            "_context",
            lambda self: (_ for _ in ()).throw(OSError("no fork for you")),
        )
        cells = grid_cells()[:2]
        fallback = runner.run(cells, config)
        serial = ParallelSweepRunner(workers=1).run(cells, config)
        assert fallback == serial

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestResultSerialization:
    def _one_result(self, config) -> SimulationResult:
        return run_cell(grid_cells()[0], config)

    def test_pickle_round_trip(self, config):
        result = self._one_result(config)
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result
        assert clone.nvm_stats == result.nvm_stats
        assert clone.protocol_stats == result.protocol_stats
        assert clone.mee_stats == result.mee_stats

    def test_json_round_trip(self, config):
        result = self._one_result(config)
        clone = SimulationResult.from_json(result.to_json())
        assert clone == result

    def test_json_dict_is_plain_builtins(self, config):
        payload = self._one_result(config).to_json_dict()
        json.dumps(payload)  # would raise on any non-builtin leaf
        assert isinstance(payload["nvm_stats"], dict)

    def test_from_json_dict_ignores_unknown_keys(self, config):
        payload = self._one_result(config).to_json_dict()
        payload["added_in_a_future_version"] = 42
        clone = SimulationResult.from_json_dict(payload)
        assert clone.cycles == payload["cycles"]

    def test_derived_metrics_survive_round_trip(self, config):
        result = self._one_result(config)
        clone = SimulationResult.from_json(result.to_json())
        assert clone.cycles_per_access() == result.cycles_per_access()
        assert clone.persist_traffic() == result.persist_traffic()
        assert clone.metadata_write_amplification() == (
            result.metadata_write_amplification()
        )


class TestEdgeCases:
    """Degenerate grids the runner must handle without a pool."""

    def test_empty_grid_returns_empty(self, config, monkeypatch):
        import multiprocessing

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool built for an empty grid")

        monkeypatch.setattr(multiprocessing, "get_context", explode)
        assert ParallelSweepRunner(workers=4).run([], config) == []
        assert ParallelSweepRunner(workers=4).map(run_cell, []) == []

    def test_single_cell_runs_in_process(self, config, monkeypatch):
        import multiprocessing

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool built for a single cell")

        monkeypatch.setattr(multiprocessing, "get_context", explode)
        cells = grid_cells()[:1]
        results = ParallelSweepRunner(workers=8).run(cells, config)
        assert len(results) == 1

    def test_pool_never_larger_than_grid(self, config):
        import multiprocessing

        built = []
        real_get_context = multiprocessing.get_context

        class Recorder:
            def __init__(self, context):
                self._context = context

            def Pool(self, processes, **kwargs):
                built.append(processes)
                return self._context.Pool(processes, **kwargs)

        runner = ParallelSweepRunner(workers=64)
        runner._context = lambda: Recorder(real_get_context("fork"))
        cells = grid_cells()[:2]
        results = runner.run(cells, config)
        assert len(results) == 2
        assert built == [2]


class TestGridValidation:
    """validate_cells: typo'd grids die at planning time."""

    def test_unknown_protocol_named_in_error(self, config):
        from repro.errors import ConfigValidationError
        from repro.sim.parallel import validate_cells

        cells = grid_cells()[:1] + [
            replace(grid_cells()[0], protocol="made-up")
        ]
        with pytest.raises(ConfigValidationError) as excinfo:
            validate_cells(cells)
        assert excinfo.value.field == "cell.protocol"
        assert "made-up" in str(excinfo.value)

    def test_unknown_protocol_rejected_before_any_work(self, config):
        from repro.errors import ConfigValidationError

        cells = [replace(grid_cells()[0], protocol="nope")]
        with pytest.raises(ConfigValidationError):
            ParallelSweepRunner(workers=1).run(cells, config)

    def test_bad_churn_interval_rejected(self, config):
        from repro.errors import ConfigValidationError
        from repro.sim.parallel import validate_cells

        cells = [replace(grid_cells()[0], churn_interval=0)]
        with pytest.raises(ConfigValidationError) as excinfo:
            validate_cells(cells)
        assert excinfo.value.field == "cell.churn_interval"

    def test_negative_scatter_rejected(self, config):
        from repro.errors import ConfigValidationError
        from repro.sim.parallel import validate_cells

        cells = [replace(grid_cells()[0], scatter_span_chunks=-1)]
        with pytest.raises(ConfigValidationError) as excinfo:
            validate_cells(cells)
        assert excinfo.value.field == "cell.scatter_span_chunks"


class TestTraceSpecValidation:
    """validate_trace_spec: field-level errors for malformed specs."""

    def test_unknown_profile_name(self):
        from repro.errors import ConfigValidationError
        from repro.workloads.registry import validate_trace_spec

        spec = profile_spec("parsec", "blackscholes", 1000, 1)
        bad = replace(spec, names=("not-a-benchmark",))
        with pytest.raises(ConfigValidationError) as excinfo:
            validate_trace_spec(bad)
        assert excinfo.value.field == "trace.names"

    def test_unknown_suite(self):
        from repro.errors import ConfigValidationError
        from repro.workloads.registry import validate_trace_spec

        spec = profile_spec("parsec", "blackscholes", 1000, 1)
        bad = replace(spec, suite="not-a-suite")
        with pytest.raises(ConfigValidationError) as excinfo:
            validate_trace_spec(bad)
        assert excinfo.value.field == "trace.suite"

    def test_nonpositive_accesses(self):
        from repro.errors import ConfigValidationError
        from repro.workloads.registry import validate_trace_spec

        spec = profile_spec("parsec", "blackscholes", 1000, 1)
        bad = replace(spec, accesses=0)
        with pytest.raises(ConfigValidationError) as excinfo:
            validate_trace_spec(bad)
        assert excinfo.value.field == "trace.accesses"

    def test_valid_specs_pass(self):
        from repro.workloads.registry import validate_trace_spec

        validate_trace_spec(profile_spec("parsec", "canneal", 500, 7))
        validate_trace_spec(
            multiprogram_spec("parsec", ("canneal", "dedup"), 500, 7)
        )
