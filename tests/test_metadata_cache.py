"""The security metadata cache and its AMNT dirty-scan support."""

import pytest

from repro.cache.metadata_cache import (
    MetadataCache,
    counter_key,
    hmac_key,
    node_key,
)
from repro.config import MetadataCacheConfig


@pytest.fixture
def cache():
    return MetadataCache(MetadataCacheConfig())


class TestKeys:
    def test_key_forms(self):
        assert counter_key(5) == ("ctr", 5)
        assert node_key(3, 7) == ("node", 3, 7)
        assert hmac_key(9) == ("hmac", 9)

    def test_kinds_do_not_collide(self, cache):
        cache.insert(counter_key(1))
        assert not cache.contains(node_key(1, 1))
        assert not cache.contains(hmac_key(1))


class TestBasicOps:
    def test_capacity_is_1024_lines(self, cache):
        assert cache.capacity_lines() == 1024

    def test_access_latency_from_config(self, cache):
        assert cache.access_latency_cycles == 2

    def test_lookup_insert_dirty_cycle(self, cache):
        key = counter_key(3)
        assert not cache.lookup(key)
        cache.insert(key)
        cache.mark_dirty(key)
        assert cache.is_dirty(key)
        cache.clean(key)
        assert not cache.is_dirty(key)

    def test_drop_all(self, cache):
        cache.insert(counter_key(1), dirty=True)
        dropped = cache.drop_all()
        assert len(dropped) == 1
        assert cache.occupancy() == 0


class TestDirtyNodeScan:
    def test_yields_only_tree_nodes(self, cache):
        cache.insert(counter_key(1), dirty=True)
        cache.insert(hmac_key(2), dirty=True)
        cache.insert(node_key(4, 9), dirty=True)
        cache.insert(node_key(5, 2))  # clean
        assert list(cache.dirty_tree_nodes()) == [(4, 9)]

    def test_predicate_filtering(self, cache):
        cache.insert(node_key(4, 9), dirty=True)
        cache.insert(node_key(6, 1), dirty=True)
        deep = cache.dirty_nodes_matching(lambda level, index: level >= 5)
        assert deep == [(6, 1)]

    def test_empty_scan(self, cache):
        assert list(cache.dirty_tree_nodes()) == []
