"""Telemetry subsystem: registry, spans, events, export, LRU caches,
and the bit-identity contract.

The load-bearing guarantee is the last class: a simulation produces the
exact same :class:`SimulationResult` with telemetry enabled or disabled
— the subsystem observes runs, it never participates in them.
"""

import json

import pytest

from repro import telemetry
from repro.bench.perf import run_reference_bench, run_resilient_sweep
from repro.bench.profiling import profile_run, validate_profile_document
from repro.config import default_config
from repro.sim.parallel import ParallelSweepRunner, SweepCell, run_cell
from repro.sim.supervisor import SupervisionPolicy
from repro.telemetry.events import EventSink, install_sink, load_events, set_sink
from repro.telemetry.export import (
    METRICS_SCHEMA,
    build_metrics_document,
    render_prometheus,
    validate_metrics_document,
    write_metrics_artifact,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanTracer
from repro.util.units import MB
from repro.workloads import registry as workloads
from repro.workloads.registry import profile_spec

SEED = 2024
FAST = dict(backoff_base_seconds=0.01, backoff_max_seconds=0.02)

#: Small functional trace shared by the bit-identity grid.
TRACE = profile_spec("parsec", "blackscholes", 400, SEED)

#: The paper's figure protocols — all six, per the acceptance bar.
PROTOCOLS = ("volatile", "leaf", "strict", "anubis", "bmf", "amnt")


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with pristine global telemetry."""
    prev = telemetry.enabled()
    telemetry.reset()
    yield
    telemetry.set_enabled(prev)
    telemetry.reset()
    set_sink(None)


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").add(4)
        reg.gauge("g").set(2.5)
        reg.gauge("g").inc(0.5)
        hist = reg.histogram("h", (1.0, 5.0))
        for value in (0.5, 1.0, 3.0, 5.0, 99.0):
            hist.observe(value)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 3.0
        assert snap["histograms"]["h"]["buckets"] == [1.0, 5.0]
        # le (<=) semantics: 0.5 and 1.0 land in the first bucket,
        # 3.0 and 5.0 in the second, 99.0 overflows.
        assert snap["histograms"]["h"]["counts"] == [2, 2, 1]
        assert snap["histograms"]["h"]["count"] == 5
        assert snap["histograms"]["h"]["sum"] == pytest.approx(108.5)

    def test_lookup_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h", (1.0,)) is reg.histogram("h", (1.0,))

    def test_diff_drops_zero_deltas(self):
        reg = MetricsRegistry()
        reg.counter("touched").inc()
        reg.counter("idle").inc()
        before = reg.snapshot()
        reg.counter("touched").add(2)
        delta = reg.diff(before)
        assert delta["counters"] == {"touched": 2}

    def test_merge_snapshot_adds_counters_and_histograms(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h", (1.0,)).observe(0.5)
        other = MetricsRegistry()
        other.counter("c").add(10)
        other.counter("new").inc()
        other.histogram("h", (1.0,)).observe(9.0)
        reg.merge_snapshot(other.snapshot())
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 11, "new": 1}
        assert snap["histograms"]["h"]["counts"] == [1, 1]
        assert snap["histograms"]["h"]["count"] == 2

    def test_merge_snapshot_rejects_bucket_mismatch(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0,)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("h", (2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            reg.merge_snapshot(other.snapshot())

    def test_disabled_handles_are_noops(self):
        telemetry.set_enabled(False)
        telemetry.counter("ghost").inc()
        telemetry.gauge("ghost").set(1)
        telemetry.histogram("ghost", (1.0,)).observe(0.5)
        telemetry.set_enabled(True)
        snap = telemetry.get_registry().snapshot()
        assert "ghost" not in snap["counters"]
        assert "ghost" not in snap["gauges"]
        assert "ghost" not in snap["histograms"]


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------


class TestSpans:
    def test_nesting_records_parent_ids(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.finished()
        assert inner["name"] == "inner"
        assert outer["name"] == "outer"
        assert outer["parent"] is None
        assert inner["parent"] == outer["id"]
        assert inner["duration_s"] >= 0.0
        assert outer["duration_s"] >= inner["duration_s"]

    def test_ring_is_bounded(self):
        tracer = SpanTracer(capacity=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        finished = tracer.finished()
        assert len(finished) == 4
        assert [s["name"] for s in finished] == ["s6", "s7", "s8", "s9"]

    def test_module_span_is_noop_when_disabled(self):
        telemetry.set_enabled(False)
        with telemetry.span("invisible"):
            pass
        telemetry.set_enabled(True)
        assert telemetry.get_tracer().finished() == []


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------


class TestEvents:
    def test_round_trip_and_sequencing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = EventSink(path, flush_every=2)
        sink.emit("alpha", key="a")
        sink.emit("beta", key="b")  # auto-flush on the second event
        events = load_events(path)
        assert [e["kind"] for e in events] == ["alpha", "beta"]
        assert [e["seq"] for e in events] == [0, 1]
        assert all("t" in e for e in events)
        sink.close()

    def test_load_tolerates_torn_and_garbage_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = EventSink(path)
        sink.emit("ok", key="a")
        sink.flush()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 1, "kind": "torn"')  # no newline, torn
        events = load_events(path)
        assert [e["kind"] for e in events] == ["ok"]

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_events(tmp_path / "absent.jsonl") == []

    def test_close_creates_file_even_when_empty(self, tmp_path):
        path = tmp_path / "events.jsonl"
        EventSink(path).close()
        assert path.exists()
        assert load_events(path) == []

    def test_install_sink_routes_emit_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        install_sink(path)
        telemetry.emit_event("probe", value=7)
        telemetry.get_sink().flush()
        events = load_events(path)
        assert events[0]["kind"] == "probe"
        assert events[0]["value"] == 7


# ----------------------------------------------------------------------
# export: metrics document + Prometheus rendering
# ----------------------------------------------------------------------


class TestExport:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("sim.runs").add(3)
        reg.gauge("sweep.workers").set(2)
        reg.histogram("sweep.cell_seconds", (0.1, 1.0)).observe(0.05)
        reg.histogram("sweep.cell_seconds", (0.1, 1.0)).observe(5.0)
        return reg

    def test_document_builds_valid(self):
        doc = build_metrics_document(
            self._registry(), run={"kind": "test"}, spans=[]
        )
        assert doc["schema"] == METRICS_SCHEMA
        assert validate_metrics_document(doc) == []

    def test_validation_catches_corruption(self):
        doc = build_metrics_document(self._registry(), run={"kind": "test"})
        doc["metrics"]["histograms"]["sweep.cell_seconds"]["counts"] = [1]
        assert validate_metrics_document(doc)
        assert validate_metrics_document({"schema": "bogus/v9"})
        assert validate_metrics_document([])

    def test_prometheus_rendering(self):
        text = render_prometheus(self._registry().snapshot())
        assert "repro_sim_runs 3" in text
        assert "repro_sweep_workers 2" in text
        # Cumulative buckets: 0.05 <= 0.1, 5.0 only under +Inf.
        assert 'repro_sweep_cell_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_sweep_cell_seconds_bucket{le="1"} 1' in text
        assert 'repro_sweep_cell_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_sweep_cell_seconds_count 2" in text
        assert "# TYPE repro_sim_runs counter" in text

    def test_write_metrics_artifact(self, tmp_path):
        path = tmp_path / "METRICS.json"
        write_metrics_artifact(path, self._registry(), run={"kind": "test"})
        doc = json.loads(path.read_text())
        assert validate_metrics_document(doc) == []
        assert doc["run"] == {"kind": "test"}


# ----------------------------------------------------------------------
# bounded workload caches (satellite: LRU + cache telemetry)
# ----------------------------------------------------------------------


class TestWorkloadCaches:
    def test_trace_cache_is_lru_bounded(self):
        prev = workloads.trace_cache_limit()
        workloads.trace_cache_clear()
        telemetry.get_registry().reset()
        try:
            workloads.set_trace_cache_limit(2)
            specs = [
                profile_spec("parsec", "blackscholes", n, SEED)
                for n in (100, 110, 120)
            ]
            for spec in specs:
                workloads.materialize_trace(spec)
            assert workloads.trace_cache_size() == 2
            # The oldest entry was evicted: re-materializing it misses.
            workloads.materialize_trace(specs[0])
            snap = telemetry.get_registry().snapshot()
            assert snap["counters"]["trace_cache.misses"] == 4
            assert snap["counters"]["trace_cache.evictions"] >= 1
            assert snap["gauges"]["trace_cache.size"] == 2
            # A warm entry hits.
            workloads.materialize_trace(specs[0])
            snap = telemetry.get_registry().snapshot()
            assert snap["counters"]["trace_cache.hits"] == 1
        finally:
            workloads.set_trace_cache_limit(prev)
            workloads.trace_cache_clear()

    def test_cache_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            workloads.set_trace_cache_limit(0)
        with pytest.raises(ValueError):
            workloads.set_stream_cache_limit(-1)

    def test_shrinking_limit_evicts_overflow(self):
        prev = workloads.stream_cache_limit()
        try:
            workloads.set_stream_cache_limit(8)
            assert workloads.stream_cache_limit() == 8
            workloads.set_stream_cache_limit(1)
            assert workloads.boundary_stream_cache_size() <= 1
        finally:
            workloads.set_stream_cache_limit(prev)


# ----------------------------------------------------------------------
# the contract: telemetry never changes simulation results
# ----------------------------------------------------------------------


def _run_grid(config):
    results = {}
    for protocol in PROTOCOLS:
        for mode in ("eager", "lazy"):
            cell = SweepCell(
                protocol=protocol,
                trace=TRACE,
                seed=SEED,
                functional=True,
                integrity_mode=mode,
            )
            results[(protocol, mode)] = run_cell(cell, config)
    return results


class TestBitIdentity:
    def test_results_identical_with_telemetry_on_and_off(self, small_config):
        telemetry.set_enabled(False)
        off = _run_grid(small_config)
        telemetry.set_enabled(True)
        telemetry.reset()
        on = _run_grid(small_config)
        assert on == off
        # And the enabled run actually recorded something.
        snap = telemetry.get_registry().snapshot()
        assert snap["counters"]["sim.runs"] == len(PROTOCOLS) * 2
        assert snap["counters"]["sweep.cells"] == len(PROTOCOLS) * 2
        for protocol in PROTOCOLS:
            assert snap["counters"][f"sim.runs.{protocol}"] == 2

    def test_pool_merge_counts_each_cell_once(self, small_config):
        telemetry.set_enabled(True)
        telemetry.reset()
        cells = [
            SweepCell(protocol=protocol, trace=TRACE, seed=SEED)
            for protocol in ("volatile", "leaf")
        ]
        # workers=2 exercises the pool path (or its in-process
        # fallback); either way each cell must land exactly once.
        results = ParallelSweepRunner(workers=2).run(cells, small_config)
        assert len(results) == 2
        snap = telemetry.get_registry().snapshot()
        assert snap["counters"]["sim.runs"] == 2
        assert snap["counters"]["sweep.cells"] == 2
        assert snap["gauges"]["sweep.workers"] == 2


# ----------------------------------------------------------------------
# supervised runs: event log is a faithful superset of the journal
# ----------------------------------------------------------------------


class TestSupervisedEvents:
    PERF_KW = dict(
        benchmarks=("blackscholes",),
        protocols=("volatile", "leaf"),
        accesses=300,
        seed=SEED,
        workers=1,
    )

    def test_resumed_event_log_supersets_journal(self, tmp_path):
        run_dir = tmp_path / "run"
        events_path = tmp_path / "events.jsonl"
        telemetry.set_enabled(True)
        install_sink(events_path)

        with pytest.raises(KeyboardInterrupt):
            run_resilient_sweep(
                run_dir,
                policy=SupervisionPolicy(die_after_flushes=1, **FAST),
                **self.PERF_KW,
            )
        # The sink flushed at the checkpoint *before* the injected kill,
        # so the first cell's journal_record survived the crash.
        crashed = load_events(events_path)
        assert any(e["kind"] == "journal_record" for e in crashed)

        run_resilient_sweep(
            run_dir,
            resume=True,
            policy=SupervisionPolicy(**FAST),
            **self.PERF_KW,
        )
        telemetry.get_sink().flush()

        journal_keys = set()
        with open(run_dir / "journal.jsonl", encoding="utf-8") as handle:
            for line in handle:
                entry = json.loads(line)
                if entry.get("status") in ("done", "failed"):
                    journal_keys.add(entry["key"])
        events = load_events(events_path)
        event_keys = {
            e["key"]
            for e in events
            if e["kind"] in ("journal_record", "journal_restored")
        }
        assert journal_keys
        assert journal_keys <= event_keys
        # The resumed leg re-announced the restored cell.
        assert any(e["kind"] == "journal_restored" for e in events)
        assert any(e["kind"] == "checkpoint_flush" for e in events)


# ----------------------------------------------------------------------
# surfacing: bench overhead leg and profile environment
# ----------------------------------------------------------------------


class TestSurfacing:
    def test_reference_bench_reports_telemetry_overhead(self, tmp_path):
        report = run_reference_bench(
            workers=1,
            benchmarks=("blackscholes",),
            protocols=("volatile", "leaf"),
            accesses=300,
            seed=SEED,
            output=None,
            include_uncached=False,
            include_replay=False,
            rounds=1,
            metrics_out=tmp_path / "METRICS.json",
        )
        timings = report["timings_seconds"]
        assert "serial_telemetry" in timings
        overhead = report["telemetry"]
        assert overhead["overhead_ratio"] > 0
        assert overhead["budget_ratio"] == pytest.approx(1.05)
        assert isinstance(overhead["within_budget"], bool)
        doc = json.loads((tmp_path / "METRICS.json").read_text())
        assert validate_metrics_document(doc) == []
        assert doc["run"]["kind"] == "reference-bench-serial"

    def test_profile_document_reports_environment(self):
        doc = profile_run(
            benchmark="blackscholes",
            protocol="volatile",
            accesses=500,
            seed=SEED,
            capture_cprofile=False,
        )
        assert validate_profile_document(doc) == []
        env = doc["environment"]
        assert env["visible_cpus"] >= 1
        assert env["workers"] == 1
        assert isinstance(env["python"], str)
