"""Per-core private caches beneath the shared LLC."""

from dataclasses import replace

import pytest

from repro.config import DataCacheConfig, default_config
from repro.mem.address import AddressSpace
from repro.sim.machine import build_machine
from repro.sim.multicore import PrivateCacheLayer, simulate_multicore
from repro.util.units import KB, MB
from repro.workloads.multiprogram import multiprogram_trace
from repro.workloads.synthetic import WorkloadProfile, generate_trace


@pytest.fixture
def config():
    base = default_config(capacity_bytes=64 * MB)
    return replace(
        base, llc=DataCacheConfig(capacity_bytes=256 * KB, associativity=16)
    )


@pytest.fixture
def layer():
    space = AddressSpace(capacity_bytes=64 * MB)
    return PrivateCacheLayer(
        DataCacheConfig(capacity_bytes=4 * KB, associativity=2), space
    )


class TestPrivateCacheLayer:
    def test_per_pid_isolation(self, layer):
        hit, fill, _ = layer.access(0, 0, False)
        assert not hit and fill == 0
        # The same block from another core misses its own cache.
        hit, fill, _ = layer.access(1, 0, False)
        assert not hit and fill == 0
        # But hits its own on re-access.
        hit, _, _ = layer.access(0, 0, False)
        assert hit

    def test_dirty_victims_surface(self, layer):
        sets = 32  # 4 kB / 64 B / 2 ways
        layer.access(0, 0, True)
        layer.access(0, sets * 64, False)
        _, _, victims = layer.access(0, 2 * sets * 64, False)
        assert victims == (0,)

    def test_cores_listed(self, layer):
        layer.access(3, 0, False)
        layer.access(1, 0, False)
        assert layer.cores() == [1, 3]

    def test_hit_rate_per_core(self, layer):
        layer.access(0, 0, False)
        layer.access(0, 0, False)
        assert layer.hit_rate(0) == pytest.approx(0.5)


class TestSimulateMulticore:
    def test_runs_and_reports(self, config):
        trace = multiprogram_trace(
            [
                WorkloadProfile(
                    name="mc-a", footprint_bytes=1 * MB, num_accesses=2000,
                    write_fraction=0.4, think_cycles=4,
                ),
                WorkloadProfile(
                    name="mc-b", footprint_bytes=1 * MB, num_accesses=2000,
                    write_fraction=0.4, think_cycles=4,
                ),
            ],
            seed=6,
        )
        machine = build_machine(config, "amnt", seed=6)
        result = simulate_multicore(machine, trace, seed=6)
        assert result.cycles > 0
        assert result.accesses == 4000

    def test_private_layer_filters_shared_traffic(self, config):
        """With private caches absorbing reuse, the shared LLC sees
        fewer probes than the flat model's."""
        from repro.sim.engine import simulate

        profile = WorkloadProfile(
            name="mc-filter", footprint_bytes=512 * KB, num_accesses=4000,
            write_fraction=0.3, think_cycles=4,
        )
        trace = generate_trace(profile, seed=2)
        flat = build_machine(config, "leaf", seed=2)
        simulate(flat, trace, seed=2)
        layered = build_machine(config, "leaf", seed=2)
        simulate_multicore(layered, trace, seed=2)
        flat_probes = (
            flat.llc.stats.get("hits") + flat.llc.stats.get("misses")
        )
        layered_probes = (
            layered.llc.stats.get("hits") + layered.llc.stats.get("misses")
        )
        assert layered_probes < flat_probes

    def test_protocol_ordering_survives_the_layer(self, config):
        trace = generate_trace(
            WorkloadProfile(
                name="mc-order", footprint_bytes=2 * MB, num_accesses=4000,
                write_fraction=0.5, think_cycles=4,
            ),
            seed=3,
        )
        cycles = {}
        for name in ("leaf", "strict"):
            machine = build_machine(config, name, seed=3)
            cycles[name] = simulate_multicore(machine, trace, seed=3).cycles
        assert cycles["leaf"] < cycles["strict"]
