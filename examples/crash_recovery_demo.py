#!/usr/bin/env python3
"""Crash-recovery walkthrough: the paper's core guarantee, end to end.

This example runs the *functional* engine (real counter-mode
encryption, HMACs, and Merkle hashing over a simulated NVM image) and
demonstrates, for each protocol:

1. a workload writes records through the secure-memory engine;
2. power fails — every volatile structure (metadata cache, dirty tree
   nodes, dirty counters) evaporates; only the NVM image and the
   non-volatile on-chip registers survive;
3. the protocol's recovery procedure rebuilds whatever it considers
   stale and checks it against its root(s) of trust;
4. every record reads back decrypted and authenticated.

It then shows the two failure cases that make all of this necessary:
the volatile baseline (not crash consistent) failing recovery, and an
attacker tampering with the powered-off NVM image being caught.

Run:  python examples/crash_recovery_demo.py
"""

from __future__ import annotations

from repro import IntegrityError, default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import CrashInjector
from repro.mem.backend import MetadataRegion
from repro.util.units import MB

PROTOCOLS = ("strict", "leaf", "osiris", "anubis", "bmf", "amnt")
RECORDS = 120
PAGES = 32


def build_engine(protocol_name: str) -> MemoryEncryptionEngine:
    config = default_config(capacity_bytes=64 * MB)
    return MemoryEncryptionEngine(
        config, make_protocol(protocol_name, config), functional=True
    )


def write_records(mee: MemoryEncryptionEngine) -> dict:
    store = {}
    for i in range(RECORDS):
        addr = (i % PAGES) * 4096 + (i % 4) * 64
        payload = f"record-{i:04d}".encode().ljust(64, b"\x00")
        mee.write_block(addr, data=payload)
        store[addr] = payload
    return store


def main() -> None:
    print("=== crash + recovery, per protocol ===")
    for name in PROTOCOLS:
        mee = build_engine(name)
        store = write_records(mee)
        outcome = CrashInjector(mee).crash_and_recover()
        verified = sum(
            1 for addr, payload in store.items()
            if mee.read_block_data(addr) == payload
        )
        print(
            f"{name:8s} recovery={'OK ' if outcome.ok else 'FAIL'} "
            f"nodes-recomputed={outcome.nodes_recomputed:>5}  "
            f"records-verified={verified}/{len(store)}  {outcome.detail}"
        )

    print("\n=== why the baseline needs all this: volatile secure memory ===")
    mee = build_engine("volatile")
    write_records(mee)
    outcome = CrashInjector(mee).crash_and_recover()
    print(
        f"volatile recovery={'OK' if outcome.ok else 'FAIL'}: "
        f"{outcome.detail or 'dirty metadata died with the caches'}"
    )

    print("\n=== tamper-while-powered-off is detected ===")
    mee = build_engine("amnt")
    write_records(mee)
    injector = CrashInjector(mee)
    injector.crash_only()
    # The attacker edits a data block on the powered-off DIMM.
    mee.nvm.backend.corrupt(MetadataRegion.DATA, 0)
    injector.recover()
    try:
        mee.read_block_data(0)
        print("UNEXPECTED: tampered block read back verified")
    except IntegrityError as error:
        print(f"tampered data rejected: {error}")

    # And a replayed counter contradicts the NV subtree register.
    mee = build_engine("amnt")
    write_records(mee)
    injector = CrashInjector(mee)
    injector.crash_only()
    mee.nvm.backend.corrupt(MetadataRegion.COUNTERS, 0)
    outcome = injector.recover()
    print(
        f"tampered counter at recovery: "
        f"{'rejected - ' + outcome.detail if not outcome.ok else 'MISSED'}"
    )


if __name__ == "__main__":
    main()
