#!/usr/bin/env python3
"""Extensions tour: hybrid SCM+DRAM machines and SGX-style trees.

The paper's related-work section sketches two portability claims that
this reproduction implements for real:

1. §7.3 — "AMNT abstracts well to a hybrid SCM-DRAM machine": a
   volatile BMT (volatile root register) protects DRAM, AMNT protects
   SCM, and the memory controller routes by physical partition. We
   build one, write to both sides, pull the plug, and show the SCM side
   recovering while DRAM legitimately restarts empty.

2. §2.1 — "the proposed protocol can be used in an SGX-style BMT with
   small modifications": SGX-style trees embed version counters in
   nodes instead of child hashes. We anchor an AMNT-style subtree
   register at an interior node of an SGX tree and show it accepting a
   consistent post-crash image and rejecting stale or tampered ones.

Run:  python examples/hybrid_and_sgx.py
"""

from __future__ import annotations

from repro import default_config
from repro.core.hybrid import HybridLayout, HybridSCMDRAMSystem
from repro.crypto.engine import RealCryptoEngine
from repro.integrity.geometry import TreeGeometry
from repro.integrity.sgx import SGXStyleTree
from repro.mem.backend import MetadataRegion, SparseMemory
from repro.util.units import MB


def hybrid_demo() -> None:
    print("=== hybrid SCM + DRAM machine (§7.3) ===")
    layout = HybridLayout(dram_bytes=32 * MB, scm_bytes=32 * MB)
    system = HybridSCMDRAMSystem(
        default_config(capacity_bytes=32 * MB), layout, functional=True
    )
    dram_addr, scm_addr = 0, layout.dram_bytes
    system.write_block(dram_addr, data=b"dram: scratch state".ljust(64, b"\x00"))
    interval = system.scm.config.amnt.movement_interval_writes
    for _ in range(interval + 1):
        system.write_block(scm_addr, data=b"scm: durable record".ljust(64, b"\x00"))
    nonvolatile, volatile = system.extra_register_bytes()
    print(f"  registers: {nonvolatile}B non-volatile (SCM side), "
          f"{volatile}B volatile (the DRAM tree's root)")
    print(f"  persists so far (all from the SCM side): "
          f"{system.persist_traffic():,}")

    outcome = system.crash_and_recover()
    print(f"  power failure -> recovery {'OK' if outcome.ok else 'FAILED'} "
          f"({outcome.protocol}, {outcome.nodes_recomputed} nodes)")
    scm_back = system.read_block_data(scm_addr).rstrip(b"\x00")
    dram_back = system.read_block_data(dram_addr)
    print(f"  SCM record after reboot:  {scm_back!r}")
    print(f"  DRAM block after reboot:  "
          f"{'zeroed (as real DRAM would be)' if dram_back == bytes(64) else 'UNEXPECTED'}")


def sgx_demo() -> None:
    print("\n=== AMNT anchoring on an SGX-style tree (§2.1) ===")
    geometry = TreeGeometry.from_config(default_config(capacity_bytes=64 * MB))
    tree = SGXStyleTree(geometry, RealCryptoEngine(), SparseMemory())
    subtree = (3, 0)

    # Leaf-persistence phase inside the subtree, then the register
    # snapshot AMNT's NV register would hold.
    tree.bump_counter(0)
    tree.persist_path(0)
    anchor = tree.subtree_anchor(subtree)
    print(f"  subtree {subtree} anchor: version={anchor[0]}, "
          f"mac={anchor[1].hex()}")

    tree.crash()
    print(f"  consistent image accepted:  "
          f"{tree.verify_subtree_against_anchor(subtree, anchor)}")

    tree.backend.corrupt(MetadataRegion.TREE, subtree)
    print(f"  tampered image rejected:    "
          f"{not tree.verify_subtree_against_anchor(subtree, anchor)}")


def main() -> None:
    hybrid_demo()
    sgx_demo()


if __name__ == "__main__":
    main()
