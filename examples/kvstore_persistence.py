#!/usr/bin/env python3
"""An in-memory key-value store on secure SCM — the paper's motivating
application, built on the public API.

Storage-class memory is pitched at in-memory databases that need disk
durability at memory speed. This example implements a small persistent
KV store whose backing blocks live in integrity-protected, encrypted
SCM via the functional engine. Every PUT write-throughs its block by
the active protocol's rules; a crash at a random point must lose
nothing that was acknowledged, and recovery must complete within the
protocol's bound.

The demo runs the same PUT workload under leaf persistence, Anubis, and
AMNT, crashes mid-stream, recovers, and audits the store — then prints
each protocol's runtime persist traffic and its analytic recovery time
at data-center scale (2 TB), reproducing the paper's trade-off in an
application setting.

Run:  python examples/kvstore_persistence.py
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import CrashInjector, RecoveryAnalysis
from repro.util.rng import make_rng
from repro.util.units import MB, TB

BLOCK = 64
PROTOCOLS = ("leaf", "anubis", "amnt")


class SecureKVStore:
    """A fixed-capacity KV store over integrity-protected SCM.

    Keys are strings hashed to a block slot (open addressing); values
    are byte strings up to 48 bytes (the rest of the 64 B block holds
    the key fingerprint and length). This is deliberately simple — the
    point is that *every* store byte crosses the secure-memory engine.
    """

    SLOTS = 4096

    def __init__(self, mee: MemoryEncryptionEngine) -> None:
        self.mee = mee

    def _slot_of(self, key: str) -> int:
        digest = 2166136261
        for char in key:
            digest = ((digest ^ ord(char)) * 16777619) & 0xFFFFFFFF
        return digest % self.SLOTS

    def _fingerprint(self, key: str) -> bytes:
        return self.mee.engine.mac(key.encode())[:8]

    def _addr(self, slot: int) -> int:
        return slot * BLOCK

    def put(self, key: str, value: bytes) -> None:
        if len(value) > 48:
            raise ValueError("value too large for one block")
        slot = self._slot_of(key)
        record = (
            self._fingerprint(key)
            + len(value).to_bytes(2, "little")
            + value.ljust(48, b"\x00")
        ).ljust(BLOCK, b"\x00")
        self.mee.write_block(self._addr(slot), data=record)

    def get(self, key: str) -> Optional[bytes]:
        slot = self._slot_of(key)
        record = self.mee.read_block_data(self._addr(slot))
        if record[:8] != self._fingerprint(key):
            return None  # empty slot or hash collision
        length = int.from_bytes(record[8:10], "little")
        return record[10 : 10 + length]


def run_protocol(name: str) -> None:
    config = default_config(capacity_bytes=64 * MB)
    mee = MemoryEncryptionEngine(
        config, make_protocol(name, config), functional=True
    )
    store = SecureKVStore(mee)
    rng = make_rng(f"kv/{name}")

    acknowledged: Dict[str, bytes] = {}
    crash_at = 150
    for i in range(200):
        if i == crash_at:
            outcome = CrashInjector(mee).crash_and_recover()
            status = "OK" if outcome.ok else "FAILED"
            print(f"  power failure at op {i}: recovery {status} "
                  f"({outcome.nodes_recomputed} nodes recomputed)")
        key = f"user:{rng.randrange(80):03d}"
        value = f"v{i}".encode()
        store.put(key, value)
        acknowledged[key] = value

    lost = sum(
        1 for key, value in acknowledged.items() if store.get(key) != value
    )
    persists = mee.nvm.persists()
    recovery = RecoveryAnalysis(default_config())
    bound_ms = recovery.recovery_ms(name if name != "amnt" else "amnt", 2 * TB)
    print(
        f"  audit: {len(acknowledged) - lost}/{len(acknowledged)} records "
        f"intact, {persists:,} persist writes, "
        f"recovery bound @2TB = {bound_ms:,.2f} ms"
    )
    if lost:
        raise SystemExit(f"{name}: lost {lost} acknowledged records!")


def main() -> None:
    print("secure KV store on SCM: PUT stream with a mid-run power failure\n")
    for name in PROTOCOLS:
        print(f"protocol: {name}")
        run_protocol(name)
        print()
    print(
        "All three protocols preserve every acknowledged PUT; they differ"
        "\nin how many NVM persist writes the stream cost (runtime) and in"
        "\nthe recovery bound (leaf rebuilds the whole tree, Anubis replays"
        "\nits shadow table, AMNT rebuilds one subtree region)."
    )


if __name__ == "__main__":
    main()
