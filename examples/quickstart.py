#!/usr/bin/env python3
"""Quickstart: run one workload under every persistence protocol.

Builds the paper's Table 1 machine, generates a write-intensive PARSEC
workload (fluidanimate), and prints the normalized-cycles comparison —
a one-benchmark slice of Figure 4 — together with AMNT's internal
statistics (subtree hit rate, movements, persist traffic).

Run:  python examples/quickstart.py [--accesses N]
"""

from __future__ import annotations

import argparse

from repro import default_config, normalized_cycles, run_protocol_sweep
from repro.workloads.parsec import parsec_profile
from repro.workloads.synthetic import generate_trace

PROTOCOLS = ("volatile", "leaf", "strict", "anubis", "bmf", "amnt")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--accesses",
        type=int,
        default=60_000,
        help="trace length (longer = sharper numbers, same shapes)",
    )
    parser.add_argument(
        "--benchmark",
        default="fluidanimate",
        help="PARSEC benchmark profile to run",
    )
    args = parser.parse_args()

    config = default_config()
    profile = parsec_profile(args.benchmark).scaled(accesses=args.accesses)
    trace = generate_trace(profile, seed=1)
    print(
        f"workload: {profile.name}  accesses={len(trace):,}  "
        f"write-fraction={trace.write_fraction():.2f}"
    )
    print(f"machine:  8GB PCM, 64kB metadata cache, subtree level 3\n")

    results = run_protocol_sweep(trace, config, PROTOCOLS, seed=1)
    normalized = normalized_cycles(results)

    print(f"{'protocol':10s} {'norm.cycles':>11s} {'persists':>10s} "
          f"{'md-hit':>7s}  notes")
    for name in PROTOCOLS:
        result = results[name]
        notes = ""
        hit_rate = result.subtree_hit_rate()
        if hit_rate is not None:
            movements = result.protocol_stats.get(
                "protocol.amnt.movements", 0
            )
            notes = f"subtree-hit={hit_rate:.1%}, movements={movements}"
        print(
            f"{name:10s} {normalized[name]:>11.3f} "
            f"{result.persist_traffic():>10,} "
            f"{result.mdcache_hit_rate:>7.1%}  {notes}"
        )

    from repro.bench.charts import bar_chart

    print()
    print(
        bar_chart(
            {name: normalized[name] for name in PROTOCOLS},
            title="normalized cycles (| marks the volatile baseline)",
            reference=1.0,
        )
    )
    print(
        "\nReading the table: 'volatile' is ordinary (non-crash-consistent)"
        "\nsecure memory — the paper's normalization baseline. Strict"
        "\npersistence pays a write-through of the whole BMT path per write;"
        "\nleaf persistence only persists the counter+HMAC; AMNT matches leaf"
        "\nwhile keeping recovery bounded to one 128MB subtree region."
    )


if __name__ == "__main__":
    main()
