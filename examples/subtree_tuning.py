#!/usr/bin/env python3
"""Administrator's guide: trading runtime overhead for recovery time.

The paper's Section 6.3/6.7 pitch: a system administrator picks the
AMNT subtree root level in the BIOS. A shallow level (2) protects a lot
of memory with the fast subtree — low runtime overhead, longer
recovery; a deep level (7) bounds recovery tightly but constrains the
hot-region tracker. This example sweeps the level on a multiprogram
workload and prints, side by side, the runtime overhead, the subtree
hit rate, and the worst-case recovery time for a 2 TB deployment —
exactly the trade-off table an operator would consult.

Run:  python examples/subtree_tuning.py [--accesses N]
"""

from __future__ import annotations

import argparse

from repro import default_config
from repro.core.recovery import RecoveryAnalysis
from repro.sim.engine import simulate
from repro.sim.machine import build_machine
from repro.workloads.multiprogram import multiprogram_trace
from repro.workloads.parsec import parsec_profile
from repro.util.units import TB

LEVELS = (2, 3, 4, 5, 6, 7)
SCATTER_CHUNKS = 40


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=30_000)
    args = parser.parse_args()

    trace = multiprogram_trace(
        [parsec_profile("bodytrack"), parsec_profile("fluidanimate")],
        seed=7,
        accesses_each=args.accesses,
    )
    print(
        "workload: bodytrack + fluidanimate (co-running, aged allocator)\n"
    )
    print(
        f"{'level':>5s} {'region':>9s} {'norm.cycles':>11s} "
        f"{'subtree-hit':>11s} {'movements':>9s} {'recovery@2TB':>13s}"
    )

    for level in LEVELS:
        config = default_config(subtree_level=level)
        analysis = RecoveryAnalysis(config)
        recovery_ms = analysis.recovery_ms("amnt", 2 * TB, subtree_level=level)

        baseline_machine = build_machine(
            config, "volatile", seed=7, scatter_span_chunks=SCATTER_CHUNKS
        )
        baseline = simulate(baseline_machine, trace, seed=7)
        machine = build_machine(
            config, "amnt", seed=7, scatter_span_chunks=SCATTER_CHUNKS
        )
        result = simulate(machine, trace, seed=7)

        region_bytes = machine.mee.geometry.region_bytes(level)
        hit_rate = result.subtree_hit_rate() or 0.0
        movements = result.protocol_stats.get("protocol.amnt.movements", 0)
        print(
            f"{level:>5d} {region_bytes // (1024 * 1024):>7d}MB "
            f"{result.cycles / baseline.cycles:>11.3f} "
            f"{hit_rate:>11.1%} {movements:>9d} {recovery_ms:>11.2f}ms"
        )

    print(
        "\nReading the table: each level down divides the worst-case"
        "\nrecovery time by 8 (the tree arity) but shrinks the region the"
        "\nfast subtree can cover, so runtime overhead creeps up — the"
        "\nknob the paper exposes in BIOS (Sections 4.1, 6.3, 6.7)."
    )


if __name__ == "__main__":
    main()
