#!/usr/bin/env python3
"""Multiprogram co-location: why AMNT++ exists.

Reproduces the paper's Section 5 narrative interactively:

1. two programs co-run on an aged (fragmented) machine; the stock buddy
   allocator hands them interleaved physical pages, so their combined
   write stream straddles subtree regions and AMNT's single fast
   subtree thrashes;
2. the same pair on the AMNT++-modified OS: reclamation-time free-list
   reordering concentrates both programs in one region, the subtree
   settles, and the overhead collapses back to leaf-persistence level;
3. the allocator's own costs are printed (Table 2's point: the
   restructuring is a percent-scale instruction overhead, off the
   allocation fast path).

Run:  python examples/multiprogram_colocation.py [--accesses N]
"""

from __future__ import annotations

import argparse

from repro import default_config
from repro.sim.engine import simulate
from repro.sim.machine import build_machine
from repro.workloads.multiprogram import multiprogram_trace
from repro.workloads.parsec import parsec_profile

SCATTER_CHUNKS = 40


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=30_000)
    args = parser.parse_args()

    config = default_config()
    trace = multiprogram_trace(
        [parsec_profile("bodytrack"), parsec_profile("fluidanimate")],
        seed=3,
        accesses_each=args.accesses,
    )
    print("workload: bodytrack + fluidanimate, aged buddy allocator\n")

    results = {}
    for name in ("volatile", "leaf", "amnt", "amnt++"):
        machine = build_machine(
            config, name, seed=3, scatter_span_chunks=SCATTER_CHUNKS
        )
        results[name] = (machine, simulate(machine, trace, seed=3))

    baseline = results["volatile"][1].cycles
    print(f"{'protocol':9s} {'norm.cycles':>11s} {'subtree-hit':>11s} "
          f"{'movements':>9s} {'os-instr':>10s}")
    for name in ("leaf", "amnt", "amnt++"):
        machine, result = results[name]
        hit = result.subtree_hit_rate()
        movements = result.protocol_stats.get("protocol.amnt.movements", 0)
        print(
            f"{name:9s} {result.cycles / baseline:>11.3f} "
            f"{'-' if hit is None else f'{hit:>10.1%}'} "
            f"{movements:>9d} {result.os_instructions:>10,}"
        )

    amnt_machine, amnt_result = results["amnt"]
    pp_machine, pp_result = results["amnt++"]
    restructure_instr = pp_machine.mm.allocator.stats.get(
        "restructure_instructions"
    )
    print(
        f"\nAMNT++ allocator detail: "
        f"{pp_machine.mm.allocator.stats.get('restructures')} restructuring "
        f"passes, {restructure_instr:,} instructions "
        f"({restructure_instr / max(1, pp_result.instructions):.2%} of the "
        f"run's total)"
    )
    print(
        f"modified-OS performance ratio (Table 2 style): "
        f"{pp_result.cycles / amnt_result.cycles:.3f}"
    )


if __name__ == "__main__":
    main()
